"""Property tests: WAL decoding never mis-parses damaged logs.

The recovery guarantee rests on one decoder property — any *prefix* of a
valid record stream decodes to exactly the fully-present records plus a
clean torn-tail signal, never garbage and never an exception.  Hypothesis
drives the encoder with arbitrary payloads and the mutilator with every
truncation point and bit flip it can find.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.documentstore.wal import (
    TAIL_CLEAN,
    TAIL_CORRUPT,
    TAIL_TORN,
    decode_records,
    encode_record,
)

payloads_strategy = st.lists(st.binary(min_size=0, max_size=64), min_size=0, max_size=8)


def encode_stream(payloads: list[bytes]) -> bytes:
    return b"".join(encode_record(payload) for payload in payloads)


@given(payloads=payloads_strategy)
def test_full_stream_round_trips(payloads: list[bytes]) -> None:
    data = encode_stream(payloads)
    decoded, clean_length, tail_state = decode_records(data)
    assert decoded == payloads
    assert clean_length == len(data)
    assert tail_state == TAIL_CLEAN


@settings(max_examples=200)
@given(payloads=payloads_strategy, data=st.data())
def test_truncation_at_any_byte_never_misparses(payloads: list[bytes], data) -> None:
    """Cutting a valid stream anywhere yields a prefix of the records.

    The decoded records must be exactly the fully-present ones — a
    truncation can tear the last record (``torn``) or land on a boundary
    (``clean``), but can never fabricate a record or report corruption.
    """
    stream = encode_stream(payloads)
    cut = data.draw(st.integers(min_value=0, max_value=len(stream)))
    decoded, clean_length, tail_state = decode_records(stream[:cut])

    # Compute how many whole records fit in the first `cut` bytes.
    expected: list[bytes] = []
    offset = 0
    for payload in payloads:
        record_end = offset + len(encode_record(payload))
        if record_end <= cut:
            expected.append(payload)
            offset = record_end
        else:
            break

    assert decoded == expected
    assert clean_length == offset
    assert tail_state == (TAIL_CLEAN if cut == offset else TAIL_TORN)


def test_truncation_exhaustive_small_stream() -> None:
    """Exhaustively check every cut of a concrete stream (no sampling)."""
    payloads = [b"", b"x", b"hello world", bytes(range(50))]
    stream = encode_stream(payloads)
    boundaries = []
    offset = 0
    for payload in payloads:
        offset += len(encode_record(payload))
        boundaries.append(offset)
    for cut in range(len(stream) + 1):
        decoded, clean_length, tail_state = decode_records(stream[:cut])
        whole = [p for p, end in zip(payloads, boundaries) if end <= cut]
        assert decoded == whole
        assert clean_length == (boundaries[len(whole) - 1] if whole else 0)
        if cut == clean_length:
            assert tail_state == TAIL_CLEAN
        else:
            assert tail_state == TAIL_TORN


@settings(max_examples=200)
@given(payloads=payloads_strategy.filter(lambda ps: len(ps) > 0), data=st.data())
def test_bit_flip_is_detected_not_misparsed(payloads: list[bytes], data) -> None:
    """Flipping any byte yields only verified records, never silent damage.

    A flipped byte may shorten the decoded list (the damaged record and
    everything after it is dropped) and usually reports ``corrupt`` — a
    flip inside a length field can also masquerade as a torn tail — but
    every payload the decoder *does* return must be byte-identical to one
    that was written, in order.
    """
    stream = encode_stream(payloads)
    position = data.draw(st.integers(min_value=0, max_value=len(stream) - 1))
    flipped = bytearray(stream)
    flipped[position] ^= 0xFF
    decoded, clean_length, tail_state = decode_records(bytes(flipped))

    assert decoded == payloads[: len(decoded)]
    assert clean_length <= len(stream)
    if decoded == payloads:
        # The flip landed in bytes the decoder never accepted (impossible:
        # every byte belongs to some record) — so a full decode can only
        # happen if damage was detected *after* the last record... which
        # cannot happen either.  Any full decode means the flip corrupted
        # nothing, which contradicts XOR with 0xFF.
        raise AssertionError("a bit flip inside the stream went unnoticed")
    assert tail_state in (TAIL_TORN, TAIL_CORRUPT)


def test_garbage_prefix_reports_corrupt() -> None:
    decoded, clean_length, tail_state = decode_records(b"not a wal record at all")
    assert decoded == []
    assert clean_length == 0
    assert tail_state == TAIL_CORRUPT


def test_empty_log_is_clean() -> None:
    assert decode_records(b"") == ([], 0, TAIL_CLEAN)
