"""Child process for the SIGKILL test: a durable served store.

Started by ``test_server_durability.py``; prints the bound port on stdout
and then blocks forever — the parent kills it with SIGKILL mid-traffic.
"""

import sys
import threading

from repro.documentstore import DocumentStoreClient
from repro.server import DocumentStoreServer


def main() -> None:
    data_dir = sys.argv[1]
    fsync = sys.argv[2] if len(sys.argv) > 2 else "always"
    backend = DocumentStoreClient(data_dir=data_dir, fsync=fsync)
    server = DocumentStoreServer(backend, port=0).start()
    print(server.port, flush=True)
    threading.Event().wait()


if __name__ == "__main__":
    main()
