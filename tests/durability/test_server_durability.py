"""Served-store durability: SIGKILL mid-traffic and graceful-drain flush.

The hard case runs a real server in a child process with ``fsync="always"``
and kills it with SIGKILL while a client thread is streaming acknowledged
inserts.  Reopening the data directory must show every acknowledged write
and nothing that was never attempted; at most the single in-flight batch
may be missing or present (it was never acknowledged either way).

The soft case checks the graceful path: with group commit
(``fsync="batch"``) a drain must flush the unsynced tail, so a planned
restart loses nothing regardless of policy.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.documentstore import DocumentStoreClient
from repro.server import ConnectionFailure, DocumentStoreServer, RemoteClient

CHILD = pathlib.Path(__file__).with_name("_server_child.py")
SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def start_child(data_dir: pathlib.Path, fsync: str = "always") -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, str(CHILD), str(data_dir), fsync],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    assert process.stdout is not None
    line = process.stdout.readline().strip()
    if not line:
        stderr = process.stderr.read() if process.stderr else ""
        raise RuntimeError(f"server child failed to start: {stderr}")
    return process, int(line)


class TestSigkillMidTraffic:
    def test_acknowledged_writes_survive_sigkill(self, tmp_path):
        data_dir = tmp_path / "data"
        process, port = start_child(data_dir, "always")
        acked: list[int] = []
        stop = threading.Event()

        def writer() -> None:
            try:
                with RemoteClient(("127.0.0.1", port), pool_size=1, retry_reads=False) as client:
                    collection = client.db.c
                    doc_id = 0
                    while not stop.is_set():
                        collection.insert_many(
                            [{"_id": doc_id + i, "v": doc_id + i} for i in range(5)]
                        )
                        acked.append(doc_id)  # append only after the ack
                        doc_id += 5
            except Exception:
                pass  # the kill severs the connection mid-request

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            deadline = time.monotonic() + 5.0
            while len(acked) < 10 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(acked) >= 10, "traffic never got going"
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
        finally:
            stop.set()
            thread.join(timeout=10)

        acked_ids = {base + i for base in acked for i in range(5)}
        survivor = DocumentStoreClient(data_dir=data_dir)
        recovered_ids = {doc["_id"] for doc in survivor.db.c.find()}
        # Every acknowledged write survived the kill ...
        missing = acked_ids - recovered_ids
        assert not missing, f"lost {len(missing)} acknowledged documents"
        # ... and nothing appeared beyond the acked stream plus at most the
        # one batch that was in flight when the process died.
        ghosts = recovered_ids - acked_ids
        in_flight = {max(acked_ids) + 1 + i for i in range(5)} if acked_ids else set()
        assert ghosts <= in_flight, f"ghost documents recovered: {sorted(ghosts)[:10]}"
        survivor.close()

    def test_killed_server_leaves_reusable_directory(self, tmp_path):
        data_dir = tmp_path / "data"
        process, port = start_child(data_dir, "always")
        with RemoteClient(("127.0.0.1", port), pool_size=1) as client:
            client.db.c.insert_many([{"_id": i} for i in range(25)])
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=10)

        # The directory reopens as a served backend and keeps accepting writes.
        backend = DocumentStoreClient(data_dir=data_dir, fsync="always")
        assert backend.db.c.count_documents({}) == 25
        with DocumentStoreServer(backend, port=0) as server:
            with RemoteClient(server.address, pool_size=1) as client:
                client.db.c.insert_many([{"_id": 100 + i} for i in range(5)])
                assert client.db.c.count_documents({}) == 30


class TestGracefulShutdownFlushes:
    def test_drain_flushes_group_commit_tail(self, tmp_path):
        data_dir = tmp_path / "data"
        # Group commit with a huge group: nothing would be synced without
        # the drain-time flush.
        backend = DocumentStoreClient(
            data_dir=data_dir, fsync="batch", batch_fsync_every=10_000
        )
        server = DocumentStoreServer(backend, port=0).start()
        with RemoteClient(server.address, pool_size=1) as client:
            client.db.c.insert_many([{"_id": i} for i in range(17)])
        counters = backend.engine.counters
        assert counters.bytes_fsynced < counters.bytes_appended
        server.shutdown()
        assert counters.bytes_fsynced == counters.bytes_appended
        backend.close()

        reopened = DocumentStoreClient(data_dir=data_dir)
        assert reopened.db.c.count_documents({}) == 17
        reopened.close()

    def test_shutdown_rejects_new_traffic_but_keeps_durability(self, tmp_path):
        data_dir = tmp_path / "data"
        backend = DocumentStoreClient(data_dir=data_dir, fsync="batch")
        server = DocumentStoreServer(backend, port=0).start()
        address = server.address
        with RemoteClient(address, pool_size=1) as client:
            client.db.c.insert_one({"_id": 1})
        server.shutdown()
        with pytest.raises(ConnectionFailure):
            with RemoteClient(address, pool_size=1, connect_timeout_seconds=1.0) as client:
                client.ping()
        backend.close()
        reopened = DocumentStoreClient(data_dir=data_dir)
        assert reopened.db.c.count_documents({}) == 1
        reopened.close()

    def test_server_status_exposes_durability_counters(self, tmp_path):
        backend = DocumentStoreClient(data_dir=tmp_path / "data", fsync="always")
        with DocumentStoreServer(backend, port=0) as server:
            with RemoteClient(server.address, pool_size=1) as client:
                client.db.c.insert_many([{"_id": i} for i in range(3)])
                status = client.server_status()
        durability = status["durability"]
        assert durability["active"] is True
        assert durability["fsync_policy"] == "always"
        assert durability["records_appended"] >= 1
        assert durability["bytes_fsynced"] > 0
        assert "recovery" in durability
