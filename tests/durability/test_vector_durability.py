"""Vector indexes through the durability stack: WAL replay, snapshots, dumps."""

from __future__ import annotations

from repro.documentstore import DocumentStoreClient, dump_database, load_database
from repro.documentstore.recovery import apply_record

DIMS = 3

VECTOR_SPEC = {"keys": ["embedding"], "type": "vector", "dims": DIMS, "metric": "l2"}

DOCS = [
    {"_id": i, "embedding": [float(i), float(i % 4), float(i % 6)], "tenant": i % 2}
    for i in range(30)
]

QUERY = [7.0, 3.0, 1.0]

PIPELINE = [{"$vectorSearch": {"queryVector": QUERY, "k": 5}}]


def make_client(tmp_path, **kwargs):
    return DocumentStoreClient(data_dir=tmp_path / "data", **kwargs)


class TestVectorDurability:
    def test_vector_index_survives_wal_replay(self, tmp_path):
        with make_client(tmp_path, fsync="always") as client:
            chunks = client.rag.chunks
            chunks.insert_many(DOCS)
            chunks.create_index(VECTOR_SPEC)
            expected = chunks.aggregate(PIPELINE)

        # No checkpoint ran: reopening replays the DDL from the WAL.
        with make_client(tmp_path) as client:
            chunks = client.rag.chunks
            spec = {s["name"]: s for s in chunks.list_indexes()}["embedding_vector"]
            assert spec["type"] == "vector"
            assert spec["dims"] == DIMS
            assert spec["metric"] == "l2"
            assert chunks.aggregate(PIPELINE) == expected

    def test_vector_index_survives_snapshot_restore(self, tmp_path):
        with make_client(tmp_path, fsync="always") as client:
            chunks = client.rag.chunks
            chunks.insert_many(DOCS)
            chunks.create_index(VECTOR_SPEC)
            expected = chunks.aggregate(PIPELINE)
            client.checkpoint()  # spec must round-trip through the manifest

        with make_client(tmp_path) as client:
            chunks = client.rag.chunks
            assert chunks.aggregate(PIPELINE) == expected
            # Post-restore maintenance still lands in the rebuilt index.
            probe = [250.0, 250.0, 250.0]
            chunks.insert_one({"_id": 999, "embedding": probe})
            top = chunks.aggregate([{"$vectorSearch": {"queryVector": probe, "k": 1}}])
            assert top[0]["_id"] == 999

    def test_btree_unique_index_spec_round_trips(self, tmp_path):
        with make_client(tmp_path, fsync="always") as client:
            chunks = client.rag.chunks
            chunks.insert_many(DOCS)
            chunks.create_index(
                {"keys": [["tenant", 1], ["_id", -1]], "unique": True, "name": "by_tenant"}
            )
            client.checkpoint()

        with make_client(tmp_path) as client:
            spec = {s["name"]: s for s in client.rag.chunks.list_indexes()}["by_tenant"]
            assert spec["keys"] == [["tenant", 1], ["_id", -1]]
            assert spec["unique"] is True

    def test_legacy_wal_record_shape_still_replays(self):
        # Records written before structured specs carried keys/unique/name.
        client = DocumentStoreClient()
        client.db.items.insert_many([{"_id": 1, "n": 1}])
        applied = apply_record(
            client,
            {
                "op": "create_index",
                "db": "db",
                "coll": "items",
                "keys": [["n", 1]],
                "unique": True,
                "name": "legacy_n",
            },
        )
        assert applied == 0
        info = client.db.items.index_information()["legacy_n"]
        assert info["unique"] is True

    def test_dump_and_load_carry_vector_specs(self, tmp_path):
        source = DocumentStoreClient()
        source.rag.chunks.insert_many(DOCS)
        source.rag.chunks.create_index(VECTOR_SPEC)
        expected = source.rag.chunks.aggregate(PIPELINE)
        dump_database(source.rag, tmp_path / "dump")

        target = DocumentStoreClient()
        load_database(target.rag, tmp_path / "dump")
        spec = {s["name"]: s for s in target.rag.chunks.list_indexes()}[
            "embedding_vector"
        ]
        assert spec["type"] == "vector"
        assert target.rag.chunks.aggregate(PIPELINE) == expected
