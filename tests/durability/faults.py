"""Deterministic fault injection for the durability test suite.

The storage engine performs every file operation through the
:class:`~repro.documentstore.wal.FileSystem` indirection.  :class:`FaultyFS`
implements that interface over the real filesystem while

* numbering every state-changing operation (write, fsync, rename,
  directory fsync, remove, truncate) — each number is a *crash point*;
* tracking, per file, the **durable watermark**: bytes are durable only
  once an fsync (or directory fsync, for renames) covered them;
* killing the process model at a scheduled crash point by raising
  :class:`SimulatedCrash` and rewriting every tracked file down to what a
  power loss at that instant could have left behind.

How much of the *unsynced* tail survives a crash is the OS's choice, not
the program's, so the schedule enumerates the interesting survivals:
``"none"`` (page cache lost entirely), ``"half"`` (a partial flush — tears
mid-record), and ``"all"`` (everything written reached disk even without
fsync).  The ``"partial"`` phase additionally crashes halfway through a
single ``write`` call, the classic torn-append shape.

Usage pattern (see ``test_crash_recovery.py``)::

    ops = count_operations(workload)            # dry run, no crash
    for point in enumerate_crash_points(ops):
        fs = FaultyFS(point)
        acked = run_to_crash(workload, fs)      # returns acknowledged state
        ... open the directory with a fresh client and compare ...

Separate helpers inject *byte-level* damage into finished files —
:func:`tear_tail` truncates mid-record and :func:`flip_byte` simulates bit
rot — for testing the decoder's corrupt-tail handling without a crash.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass
from typing import Any, BinaryIO, Callable, Iterator

from repro.documentstore.wal import FileSystem

__all__ = [
    "SimulatedCrash",
    "CrashPoint",
    "FaultyFS",
    "count_operations",
    "enumerate_crash_points",
    "run_to_crash",
    "tear_tail",
    "flip_byte",
]

#: Unsynced-tail survival modes a crash schedule enumerates.
SURVIVALS = ("none", "half", "all")

#: Crash phases relative to the scheduled operation.
PHASES = ("before", "after", "partial")


class SimulatedCrash(Exception):
    """The process died at a scheduled crash point."""

    def __init__(self, point: "CrashPoint", operation: str) -> None:
        super().__init__(f"simulated crash {point} during {operation}")
        self.point = point
        self.operation = operation


@dataclass(frozen=True)
class CrashPoint:
    """One entry of a crash schedule.

    ``index`` counts state-changing filesystem operations from zero;
    ``phase`` places the crash before the operation, after it, or (for
    writes) halfway through it; ``survival`` decides how much of each
    file's unsynced tail the simulated power loss preserves.
    """

    index: int
    phase: str = "before"
    survival: str = "all"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"op#{self.index}/{self.phase}/keep-{self.survival}"


class FaultyFS(FileSystem):
    """A :class:`FileSystem` that dies on schedule.

    With ``crash_point=None`` it only counts operations (the dry run that
    sizes the schedule).  After a crash fires, every further operation
    raises again — a dead process performs no IO — so cleanup paths cannot
    accidentally repair the injected state.
    """

    def __init__(self, crash_point: CrashPoint | None = None) -> None:
        self.crash_point = crash_point
        self.operations = 0
        self.dead = False
        self._paths: dict[int, pathlib.Path] = {}  # id(handle) -> path
        self._handles: dict[int, BinaryIO] = {}
        self._written: dict[pathlib.Path, int] = {}  # absolute size written
        self._durable: dict[pathlib.Path, int] = {}  # fsync watermark

    # ------------------------------------------------------------- crash logic

    def _checkpoint(self, operation: str, *, during: Callable[[], None] | None = None) -> bool:
        """Advance the operation counter; crash if this is the scheduled point.

        Returns True when the caller should perform the real operation
        (phase ``"after"`` crashes once it has).  ``during`` runs the
        partial version of the operation for phase ``"partial"``.
        """
        if self.dead:
            raise SimulatedCrash(self.crash_point, operation)
        point = self.crash_point
        index = self.operations
        self.operations += 1
        if point is None or index != point.index:
            return True
        if point.phase == "before":
            self._die(operation)
        if point.phase == "partial" and during is not None:
            during()
            self._die(operation)
        return True  # phase "after": caller performs the op, then _post_op fires

    def _post_op(self, operation: str) -> None:
        point = self.crash_point
        if point is not None and self.operations - 1 == point.index and point.phase != "before":
            self._die(operation)

    def _die(self, operation: str) -> None:
        """Apply the power-loss state and stop performing IO forever."""
        self.dead = True
        for handle_id, handle in list(self._handles.items()):
            path = self._paths[handle_id]
            try:
                handle.flush()  # drain user-space buffers so sizes are real
            except (OSError, ValueError):  # pragma: no cover - already closed
                pass
            written = self._written.get(path, 0)
            durable = self._durable.get(path, 0)
            unsynced = max(0, written - durable)
            if self.crash_point.survival == "none":
                keep = 0
            elif self.crash_point.survival == "half":
                keep = unsynced // 2
            else:
                keep = unsynced
            final = durable + keep
            if path.exists() and path.stat().st_size > final:
                with open(path, "r+b") as raw:
                    raw.truncate(final)
        raise SimulatedCrash(self.crash_point, operation)

    # --------------------------------------------------------- FileSystem API

    def _track(self, handle: BinaryIO, path: pathlib.Path, size: int) -> BinaryIO:
        self._paths[id(handle)] = path
        self._handles[id(handle)] = handle
        self._written[path] = size
        # Whatever the file held at open survived the previous epoch.
        self._durable[path] = size
        return handle

    def open_append(self, path: str | os.PathLike) -> BinaryIO:
        if self.dead:
            raise SimulatedCrash(self.crash_point, "open_append")
        target = pathlib.Path(path)
        size = target.stat().st_size if target.exists() else 0
        return self._track(open(target, "ab"), target, size)

    def open_write(self, path: str | os.PathLike) -> BinaryIO:
        if self.dead:
            raise SimulatedCrash(self.crash_point, "open_write")
        target = pathlib.Path(path)
        handle = self._track(open(target, "wb"), target, 0)
        self._durable[target] = 0
        return handle

    def write(self, handle: BinaryIO, data: bytes) -> None:
        path = self._paths[id(handle)]

        def partial() -> None:
            half = data[: len(data) // 2]
            handle.write(half)
            self._written[path] = self._written.get(path, 0) + len(half)

        self._checkpoint("write", during=partial)
        handle.write(data)
        self._written[path] = self._written.get(path, 0) + len(data)
        self._post_op("write")

    def fsync(self, handle: BinaryIO) -> None:
        self._checkpoint("fsync")
        handle.flush()
        os.fsync(handle.fileno())
        path = self._paths[id(handle)]
        self._durable[path] = self._written.get(path, 0)
        self._post_op("fsync")

    def close(self, handle: BinaryIO) -> None:
        if self.dead:
            raise SimulatedCrash(self.crash_point, "close")
        handle.close()
        self._handles.pop(id(handle), None)

    def replace(self, source: str | os.PathLike, target: str | os.PathLike) -> None:
        self._checkpoint("replace")
        os.replace(source, target)
        source_path, target_path = pathlib.Path(source), pathlib.Path(target)
        for table in (self._written, self._durable):
            if source_path in table:
                table[target_path] = table.pop(source_path)
        self._post_op("replace")

    def fsync_dir(self, path: str | os.PathLike) -> None:
        self._checkpoint("fsync_dir")
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        self._post_op("fsync_dir")

    def remove(self, path: str | os.PathLike) -> None:
        self._checkpoint("remove")
        try:
            os.remove(path)
        except FileNotFoundError:
            pass
        self._post_op("remove")

    def truncate(self, path: str | os.PathLike, length: int) -> None:
        self._checkpoint("truncate")
        with open(path, "r+b") as handle:
            handle.truncate(length)
            handle.flush()
            os.fsync(handle.fileno())
        target = pathlib.Path(path)
        self._written[target] = length
        self._durable[target] = length
        self._post_op("truncate")


# ---------------------------------------------------------------------------
# Schedule helpers.
# ---------------------------------------------------------------------------


def count_operations(workload: Callable[[FileSystem], Any]) -> int:
    """Dry-run *workload* against a non-crashing FaultyFS; returns op count."""
    fs = FaultyFS(crash_point=None)
    workload(fs)
    return fs.operations


def enumerate_crash_points(
    operation_count: int,
    *,
    phases: tuple[str, ...] = PHASES,
    survivals: tuple[str, ...] = SURVIVALS,
) -> Iterator[CrashPoint]:
    """Every crash point of a schedule: op index × phase × survival.

    ``"partial"`` only differs from ``"before"`` on write operations, and
    survival only matters when unsynced bytes exist — the redundant points
    are cheap enough that exhaustive beats clever here.
    """
    for index in range(operation_count):
        for phase in phases:
            for survival in survivals:
                yield CrashPoint(index=index, phase=phase, survival=survival)


def run_to_crash(workload: Callable[[FileSystem], Any], fs: FaultyFS) -> Any:
    """Run *workload* until its scheduled crash; returns the workload result.

    The workload must return its running result (e.g. the list of
    acknowledged batches, mutated in place) even when the crash interrupts
    it — the conventional shape is ``def workload(fs, acked=None)`` where
    the harness inspects ``acked`` afterwards.
    """
    try:
        return workload(fs)
    except SimulatedCrash:
        return None


# ---------------------------------------------------------------------------
# Byte-level damage (no crash required).
# ---------------------------------------------------------------------------


def tear_tail(path: str | os.PathLike, drop_bytes: int) -> int:
    """Truncate the final *drop_bytes* off *path*; returns the new size."""
    target = pathlib.Path(path)
    size = target.stat().st_size
    new_size = max(0, size - drop_bytes)
    with open(target, "r+b") as handle:
        handle.truncate(new_size)
    return new_size


def flip_byte(path: str | os.PathLike, offset: int) -> None:
    """XOR one byte of *path* at *offset* (bit rot / misdirected write)."""
    target = pathlib.Path(path)
    with open(target, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        if not original:
            raise ValueError(f"offset {offset} is past the end of {target}")
        handle.seek(offset)
        handle.write(bytes([original[0] ^ 0xFF]))
