"""Tests for secondary indexes (single-field, compound, hashed, multikey)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.documentstore import DuplicateKeyError, OperationFailure
from repro.documentstore.indexes import ASCENDING, DESCENDING, HASHED, Index, IndexSpec, hashed_value


def build_index(keys, *, unique=False, documents=()):
    index = Index(IndexSpec.from_key_specification(keys, unique=unique))
    for doc_id, document in enumerate(documents, start=1):
        index.insert(document, doc_id)
    return index


class TestIndexSpec:
    def test_name_is_generated_from_keys(self):
        spec = IndexSpec.from_key_specification([("age", ASCENDING), ("name", DESCENDING)])
        assert spec.name == "age_1_name_-1"

    def test_string_shorthand(self):
        spec = IndexSpec.from_key_specification("age")
        assert spec.keys == (("age", ASCENDING),)

    def test_mapping_shorthand(self):
        spec = IndexSpec.from_key_specification({"age": 1, "name": -1})
        assert spec.fields == ("age", "name")

    def test_empty_keys_rejected(self):
        with pytest.raises(OperationFailure):
            IndexSpec(keys=())

    def test_hashed_compound_rejected(self):
        with pytest.raises(OperationFailure):
            IndexSpec(keys=(("a", HASHED), ("b", 1)))

    def test_is_hashed(self):
        assert IndexSpec.from_key_specification({"a": HASHED}).is_hashed
        assert not IndexSpec.from_key_specification("a").is_hashed


class TestPointAndPrefixLookups:
    def test_point_lookup_single_field(self):
        index = build_index("age", documents=[{"age": 30}, {"age": 25}, {"age": 30}])
        assert sorted(index.point_lookup((30,))) == [1, 3]
        assert index.point_lookup((99,)) == []

    def test_missing_field_indexes_null(self):
        index = build_index("age", documents=[{"age": 30}, {"name": "no-age"}])
        assert index.point_lookup((None,)) == [2]

    def test_compound_point_lookup(self):
        index = build_index(
            [("last", 1), ("first", 1)],
            documents=[
                {"last": "Smith", "first": "Anna"},
                {"last": "Smith", "first": "Earl"},
                {"last": "Jones", "first": "Anna"},
            ],
        )
        assert index.point_lookup(("Smith", "Earl")) == [2]

    def test_prefix_lookup_uses_leading_fields(self):
        """A compound index answers queries on its prefix (Section 2.1.2)."""
        index = build_index(
            [("last", 1), ("first", 1), ("gender", 1)],
            documents=[
                {"last": "Smith", "first": "Anna", "gender": "F"},
                {"last": "Smith", "first": "Earl", "gender": "M"},
                {"last": "Jones", "first": "Anna", "gender": "F"},
            ],
        )
        assert sorted(index.prefix_lookup(("Smith",))) == [1, 2]
        assert index.prefix_lookup(("Smith", "Anna"))[0] == 1

    def test_multikey_index_fans_out_over_arrays(self):
        index = build_index("tags", documents=[{"tags": ["red", "blue"]}, {"tags": ["green"]}])
        assert index.point_lookup(("red",)) == [1]
        assert index.point_lookup(("green",)) == [2]


class TestRangeLookups:
    def test_range_lookup_inclusive(self):
        index = build_index("price", documents=[{"price": p} for p in (0.5, 0.99, 1.2, 1.49, 2.0)])
        assert sorted(index.range_lookup(0.99, 1.49)) == [2, 3, 4]

    def test_range_lookup_exclusive_bounds(self):
        index = build_index("price", documents=[{"price": p} for p in (1, 2, 3, 4)])
        assert sorted(
            index.range_lookup(1, 4, include_lower=False, include_upper=False)
        ) == [2, 3]

    def test_open_ended_ranges(self):
        index = build_index("price", documents=[{"price": p} for p in (1, 2, 3)])
        assert sorted(index.range_lookup(lower=2)) == [2, 3]
        assert sorted(index.range_lookup(upper=2)) == [1, 2]

    def test_hashed_index_rejects_range_scan(self):
        index = build_index({"key": HASHED}, documents=[{"key": 5}])
        with pytest.raises(OperationFailure):
            index.range_lookup(1, 10)

    def test_scan_returns_key_order(self):
        index = build_index("v", documents=[{"v": 3}, {"v": 1}, {"v": 2}])
        assert [key[0] for key, _doc in index.scan()] == [1, 2, 3]
        assert [key[0] for key, _doc in index.scan(reverse=True)] == [3, 2, 1]


class TestMaintenance:
    def test_remove_deletes_only_matching_entry(self):
        index = build_index("age", documents=[{"age": 30}, {"age": 30}])
        index.remove({"age": 30}, 1)
        assert index.point_lookup((30,)) == [2]

    def test_replace_moves_entry(self):
        index = build_index("age", documents=[{"age": 30}])
        index.replace({"age": 30}, {"age": 31}, 1)
        assert index.point_lookup((30,)) == []
        assert index.point_lookup((31,)) == [1]

    def test_unique_index_rejects_duplicates(self):
        index = build_index("email", unique=True, documents=[{"email": "a@x.com"}])
        with pytest.raises(DuplicateKeyError):
            index.insert({"email": "a@x.com"}, 2)

    def test_clear_empties_index(self):
        index = build_index("age", documents=[{"age": 1}, {"age": 2}])
        index.clear()
        assert len(index) == 0

    def test_distinct_first_values(self):
        index = build_index("age", documents=[{"age": 2}, {"age": 1}, {"age": 2}])
        assert index.distinct_first_values() == [1, 2]


class TestHashedIndex:
    def test_hashed_point_lookup(self):
        index = build_index({"key": HASHED}, documents=[{"key": i} for i in range(20)])
        assert index.point_lookup((7,)) == [8]

    def test_hashed_value_is_deterministic(self):
        assert hashed_value(42) == hashed_value(42)
        assert hashed_value("abc") == hashed_value("abc")

    def test_hashed_value_spreads_nearby_keys(self):
        values = {hashed_value(i) for i in range(100)}
        assert len(values) == 100


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=60))
def test_range_lookup_matches_linear_filter(values):
    """Property: index range scans agree with a straightforward filter."""
    documents = [{"v": value} for value in values]
    index = build_index("v", documents=documents)
    lower, upper = -100, 100
    expected = sorted(
        doc_id for doc_id, document in enumerate(documents, start=1)
        if lower <= document["v"] <= upper
    )
    assert sorted(index.range_lookup(lower, upper)) == expected


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60))
def test_point_lookup_matches_linear_filter(values):
    documents = [{"v": value} for value in values]
    index = build_index("v", documents=documents)
    needle = values[0]
    expected = sorted(
        doc_id for doc_id, document in enumerate(documents, start=1) if document["v"] == needle
    )
    assert sorted(index.point_lookup((needle,))) == expected
