"""Tests for on-disk persistence and the query planner's plan selection."""

from __future__ import annotations

from repro.documentstore import Collection, DocumentStoreClient, ObjectId, plan_query
from repro.documentstore.indexes import Index, IndexSpec
from repro.documentstore.storage import (
    dump_collection,
    dump_database,
    iter_jsonl,
    load_collection,
    load_database,
)


class TestCollectionPersistence:
    def test_dump_and_load_round_trip(self, tmp_path):
        source = Collection(None, "events")
        source.insert_many([{"k": i, "payload": {"nested": [i, i + 1]}} for i in range(50)])
        path = tmp_path / "events.jsonl"
        written = dump_collection(source, path)
        assert written == 50

        target = Collection(None, "events")
        loaded = load_collection(target, path)
        assert loaded == 50
        assert target.count_documents({}) == 50
        assert target.find_one({"k": 7})["payload"]["nested"] == [7, 8]

    def test_object_ids_survive_round_trip(self, tmp_path):
        source = Collection(None, "c")
        inserted = source.insert_one({"name": "x"}).inserted_id
        dump_collection(source, tmp_path / "c.jsonl")
        target = Collection(None, "c")
        load_collection(target, tmp_path / "c.jsonl")
        assert target.find_one({})["_id"] == inserted
        assert isinstance(target.find_one({})["_id"], ObjectId)

    def test_iter_jsonl_streams_documents(self, tmp_path):
        source = Collection(None, "c")
        source.insert_many([{"k": i} for i in range(5)])
        path = tmp_path / "c.jsonl"
        dump_collection(source, path)
        assert sum(1 for _ in iter_jsonl(path)) == 5


class TestDatabasePersistence:
    def test_dump_database_writes_manifest(self, tmp_path):
        client = DocumentStoreClient()
        database = client["db"]
        database["a"].insert_many([{"x": 1}, {"x": 2}])
        database["b"].insert_one({"y": 3})
        database["b"].create_index("y")
        counts = dump_database(database, tmp_path)
        assert counts == {"a": 2, "b": 1}
        assert (tmp_path / "__manifest__.json").exists()
        assert (tmp_path / "a.jsonl").exists()

    def test_load_database_restores_collections_and_indexes(self, tmp_path):
        client = DocumentStoreClient()
        database = client["db"]
        database["a"].insert_many([{"x": i} for i in range(10)])
        database["a"].create_index("x")
        dump_database(database, tmp_path)

        restored = DocumentStoreClient()["db2"]
        counts = load_database(restored, tmp_path)
        assert counts == {"a": 10}
        assert restored["a"].count_documents({}) == 10
        assert "x_1" in restored["a"].index_information()


def make_indexes(*specs):
    indexes = {}
    for spec in specs:
        index_spec = IndexSpec.from_key_specification(spec)
        indexes[index_spec.name] = Index(index_spec)
    return indexes


class TestPlanSelection:
    def test_no_indexes_means_collscan(self):
        plan = plan_query({"a": 1}, {}, collection_size=100)
        assert plan.stage == "COLLSCAN"
        assert plan.documents_examined == 100

    def test_no_filter_means_collscan(self):
        plan = plan_query({}, make_indexes("a"), collection_size=10)
        assert plan.stage == "COLLSCAN"

    def test_equality_on_indexed_field_uses_index(self):
        indexes = make_indexes("a")
        indexes["a_1"].insert({"a": 1}, 1)
        indexes["a_1"].insert({"a": 2}, 2)
        plan = plan_query({"a": 1}, indexes, collection_size=2)
        assert plan.stage == "IXSCAN"
        assert plan.candidate_ids == (1,)

    def test_range_on_indexed_field_uses_index(self):
        indexes = make_indexes("a")
        for doc_id, value in enumerate((5, 10, 15, 20), start=1):
            indexes["a_1"].insert({"a": value}, doc_id)
        plan = plan_query({"a": {"$gte": 10, "$lte": 15}}, indexes, collection_size=4)
        assert plan.stage == "IXSCAN"
        assert set(plan.candidate_ids) == {2, 3}

    def test_in_fans_out_to_point_lookups(self):
        indexes = make_indexes("a")
        for doc_id, value in enumerate((1, 2, 3, 4), start=1):
            indexes["a_1"].insert({"a": value}, doc_id)
        plan = plan_query({"a": {"$in": [2, 4]}}, indexes, collection_size=4)
        assert plan.stage == "IXSCAN"
        assert set(plan.candidate_ids) == {2, 4}

    def test_conditions_inside_and_are_used(self):
        indexes = make_indexes("a")
        indexes["a_1"].insert({"a": 3}, 1)
        plan = plan_query({"$and": [{"a": 3}, {"b": {"$gt": 1}}]}, indexes, collection_size=1)
        assert plan.stage == "IXSCAN"

    def test_or_queries_do_not_use_indexes(self):
        indexes = make_indexes("a")
        indexes["a_1"].insert({"a": 3}, 1)
        plan = plan_query({"$or": [{"a": 3}, {"b": 1}]}, indexes, collection_size=1)
        assert plan.stage == "COLLSCAN"

    def test_longer_equality_prefix_wins(self):
        indexes = make_indexes("a", [("a", 1), ("b", 1)])
        indexes["a_1"].insert({"a": 1, "b": 2}, 1)
        indexes["a_1_b_1"].insert({"a": 1, "b": 2}, 1)
        plan = plan_query({"a": 1, "b": 2}, indexes, collection_size=1)
        assert plan.index_name == "a_1_b_1"

    def test_hashed_index_serves_equality_but_not_range(self):
        indexes = make_indexes({"a": "hashed"})
        indexes["a_hashed"].insert({"a": 10}, 1)
        equality_plan = plan_query({"a": 10}, indexes, collection_size=1)
        assert equality_plan.stage == "IXSCAN"
        range_plan = plan_query({"a": {"$gte": 5}}, indexes, collection_size=1)
        assert range_plan.stage == "COLLSCAN"

    def test_plan_describe_shapes(self):
        indexes = make_indexes("a")
        indexes["a_1"].insert({"a": 1}, 1)
        description = plan_query({"a": 1}, indexes, collection_size=1).describe()
        assert description["stage"] == "IXSCAN"
        assert description["indexName"] == "a_1"
        collscan = plan_query({"zzz": 1}, indexes, collection_size=1).describe()
        assert collscan == {"stage": "COLLSCAN"}

    def test_plans_are_supersets_of_matches(self):
        """The planner may over-approximate but never under-approximate."""
        collection = Collection(None, "c")
        collection.insert_many([{"a": i % 5, "b": i % 3} for i in range(60)])
        collection.create_index("a")
        expected = {
            doc["_id"] for doc in collection.find({"a": 2, "b": 1})
        }
        with_index = {doc["_id"] for doc in collection.find({"a": 2, "b": 1})}
        assert with_index == expected
