"""The ``$vectorSearch`` aggregation stage and its optimizer fusion rule."""

from __future__ import annotations

import pytest

from repro.documentstore import (
    DocumentStoreClient,
    InvalidPipelineError,
    OperationFailure,
    optimize_pipeline,
)

DIMS = 3


def build_collection(n=40):
    collection = DocumentStoreClient()["db"]["docs"]
    collection.insert_many(
        [
            {
                "_id": i,
                "embedding": [float(i % 10), float(i % 7), float(i % 5)],
                "tenant": i % 4,
                "score_hint": i,
            }
            for i in range(n)
        ]
    )
    collection.create_index({"keys": ["embedding"], "type": "vector", "dims": DIMS})
    return collection


QUERY = [9.0, 6.0, 4.0]


class TestStage:
    def test_returns_scored_documents_best_first(self):
        collection = build_collection()
        results = collection.aggregate(
            [{"$vectorSearch": {"queryVector": QUERY, "k": 5}}]
        )
        assert len(results) == 5
        scores = [doc["_score"] for doc in results]
        assert scores == sorted(scores, reverse=True)
        assert all("embedding" in doc for doc in results)

    def test_stage_composes_with_downstream_stages(self):
        collection = build_collection()
        results = collection.aggregate(
            [
                {"$vectorSearch": {"queryVector": QUERY, "k": 10}},
                {"$match": {"tenant": 1}},
                {"$project": {"_id": 1, "tenant": 1, "_score": 1}},
            ]
        )
        assert results
        assert all(doc["tenant"] == 1 for doc in results)
        assert all(set(doc) == {"_id", "tenant", "_score"} for doc in results)

    def test_prefilter_restricts_candidates(self):
        collection = build_collection()
        results = collection.aggregate(
            [
                {
                    "$vectorSearch": {
                        "queryVector": QUERY,
                        "k": 40,
                        "filter": {"tenant": 2},
                    }
                }
            ]
        )
        assert results
        assert all(doc["tenant"] == 2 for doc in results)
        # Pre-filter semantics: full k is taken from the filtered set, not
        # filtered from the global top-k.
        assert len(results) == collection.count_documents({"tenant": 2})

    def test_prefilter_uses_secondary_index(self):
        collection = build_collection()
        collection.create_index("tenant")
        explain = collection.explain(
            [
                {
                    "$vectorSearch": {
                        "queryVector": QUERY,
                        "k": 5,
                        "filter": {"tenant": 2},
                    }
                }
            ]
        )
        details = explain["queryPlanner"]["winningPlan"]["vectorSearch"]
        assert details["mode"] == "filteredExact"
        assert details["filterPlan"] == "IXSCAN"

    def test_score_field_override(self):
        collection = build_collection()
        results = collection.aggregate(
            [
                {
                    "$vectorSearch": {
                        "queryVector": QUERY,
                        "k": 3,
                        "scoreField": "similarity",
                    }
                }
            ]
        )
        assert all("similarity" in doc and "_score" not in doc for doc in results)

    def test_stored_documents_not_mutated(self):
        collection = build_collection()
        collection.aggregate([{"$vectorSearch": {"queryVector": QUERY, "k": 5}}])
        assert all("_score" not in doc for doc in collection.find())

    def test_must_be_first_stage(self):
        collection = build_collection()
        with pytest.raises(InvalidPipelineError):
            collection.aggregate(
                [
                    {"$match": {"tenant": 1}},
                    {"$vectorSearch": {"queryVector": QUERY, "k": 5}},
                ]
            )

    def test_requires_vector_index(self):
        collection = DocumentStoreClient()["db"]["bare"]
        collection.insert_many([{"_id": 1, "embedding": [1.0, 2.0, 3.0]}])
        with pytest.raises(OperationFailure, match="vector index"):
            collection.aggregate([{"$vectorSearch": {"queryVector": QUERY, "k": 1}}])

    def test_unknown_option_rejected(self):
        collection = build_collection()
        with pytest.raises(OperationFailure, match="numCandidates"):
            collection.aggregate(
                [
                    {
                        "$vectorSearch": {
                            "queryVector": QUERY,
                            "k": 1,
                            "numCandidates": 100,
                        }
                    }
                ]
            )

    def test_index_selection_by_name_and_path(self):
        collection = build_collection()
        collection.create_index(
            {"keys": ["score_hint_embedding"], "type": "vector", "dims": DIMS, "name": "other_vec"}
        )
        with pytest.raises(OperationFailure, match="multiple vector indexes"):
            collection.aggregate([{"$vectorSearch": {"queryVector": QUERY, "k": 1}}])
        by_name = collection.aggregate(
            [{"$vectorSearch": {"queryVector": QUERY, "k": 1, "index": "embedding_vector"}}]
        )
        by_path = collection.aggregate(
            [{"$vectorSearch": {"queryVector": QUERY, "k": 1, "path": "embedding"}}]
        )
        assert by_name == by_path
        with pytest.raises(OperationFailure, match="not a usable vector index"):
            collection.aggregate(
                [{"$vectorSearch": {"queryVector": QUERY, "k": 1, "index": "nope"}}]
            )


class TestLimitFusion:
    """Regression tests: $vectorSearch -> $limit fuses like $sort -> $limit."""

    def spec_of(self, pipeline):
        return optimize_pipeline(pipeline)[0]["$vectorSearch"]

    def test_limit_lowers_k(self):
        optimized = self.spec_of(
            [
                {"$vectorSearch": {"queryVector": QUERY, "k": 100}},
                {"$limit": 5},
            ]
        )
        assert optimized["k"] == 5

    def test_skip_plus_limit_lowers_k(self):
        optimized = self.spec_of(
            [
                {"$vectorSearch": {"queryVector": QUERY, "k": 100}},
                {"$skip": 2},
                {"$limit": 5},
            ]
        )
        assert optimized["k"] == 7

    def test_smaller_existing_k_is_not_raised(self):
        optimized = self.spec_of(
            [
                {"$vectorSearch": {"queryVector": QUERY, "k": 3}},
                {"$limit": 50},
            ]
        )
        assert optimized["k"] == 3

    def test_intervening_match_blocks_fusion(self):
        optimized = self.spec_of(
            [
                {"$vectorSearch": {"queryVector": QUERY, "k": 100}},
                {"$match": {"tenant": 1}},
                {"$limit": 5},
            ]
        )
        assert optimized["k"] == 100

    def test_fused_results_match_unfused(self):
        collection = build_collection()
        fused = collection.aggregate(
            [
                {"$vectorSearch": {"queryVector": QUERY, "k": 40}},
                {"$limit": 5},
            ]
        )
        unfused = collection.aggregate(
            [{"$vectorSearch": {"queryVector": QUERY, "k": 40}}]
        )[:5]
        assert fused == unfused

    def test_fusion_visible_in_explain_counters(self):
        collection = build_collection()
        explain = collection.explain(
            [
                {"$vectorSearch": {"queryVector": QUERY, "k": 40}},
                {"$limit": 5},
            ],
            verbosity="executionStats",
        )
        details = explain["queryPlanner"]["winningPlan"]["vectorSearch"]
        assert details["k"] == 5
        stage_stats = {
            entry["stage"]: entry for entry in explain["executionStats"]["stages"]
        }
        assert stage_stats["$vectorSearch"]["docsReturned"] == 5
