"""Tests for document validation, size accounting, and wire serialization."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings, strategies as st

from repro.documentstore import (
    MAX_DOCUMENT_SIZE,
    DocumentTooLargeError,
    InvalidDocumentError,
    ObjectId,
    document_size,
    validate_document,
)
from repro.documentstore.bson import (
    decode_batch,
    decode_document,
    deep_copy_document,
    encode_batch,
    encode_document,
)


class TestValidation:
    def test_accepts_simple_document(self):
        validate_document({"name": "earl", "age": 36, "scores": [1, 2, 3]})

    def test_accepts_nested_documents_and_dates(self):
        validate_document(
            {
                "_id": ObjectId(),
                "address": {"city": "Midway", "zip": "45040"},
                "born": datetime.date(1979, 9, 25),
                "updated": datetime.datetime(2015, 11, 9, 12, 0),
            }
        )

    def test_rejects_non_mapping(self):
        with pytest.raises(InvalidDocumentError):
            validate_document(["not", "a", "document"])

    def test_rejects_non_string_keys(self):
        with pytest.raises(InvalidDocumentError):
            validate_document({1: "numeric key"})

    def test_rejects_dollar_prefixed_keys(self):
        with pytest.raises(InvalidDocumentError):
            validate_document({"$set": 1})

    def test_rejects_dotted_keys(self):
        with pytest.raises(InvalidDocumentError):
            validate_document({"a.b": 1})

    def test_rejects_unsupported_value_types(self):
        with pytest.raises(InvalidDocumentError):
            validate_document({"value": object()})

    def test_rejects_documents_over_16mb(self):
        huge = {"payload": "x" * (MAX_DOCUMENT_SIZE + 1)}
        with pytest.raises(DocumentTooLargeError):
            validate_document(huge)

    def test_nested_dollar_keys_rejected(self):
        with pytest.raises(InvalidDocumentError):
            validate_document({"outer": {"$inner": 1}})


class TestDocumentSize:
    def test_empty_document_has_minimal_size(self):
        assert document_size({}) == 5

    def test_size_grows_with_repeated_keys(self):
        """Repeating keys per document drives the ~9x growth of Section 4.1.2."""
        narrow = document_size({"a": 1})
        wide = document_size({"customer_address_street_name": 1})
        assert wide > narrow

    def test_string_size_includes_length(self):
        assert document_size({"k": "abcd"}) == document_size({"k": ""}) + 4

    def test_array_size_counts_elements(self):
        assert document_size({"k": [1, 2, 3]}) > document_size({"k": [1]})

    def test_size_of_unsupported_type_raises(self):
        with pytest.raises(InvalidDocumentError):
            document_size({"k": object()})


class TestDeepCopy:
    def test_copy_is_independent(self):
        original = {"nested": {"values": [1, 2, 3]}}
        copy = deep_copy_document(original)
        copy["nested"]["values"].append(4)
        assert original["nested"]["values"] == [1, 2, 3]

    def test_scalars_pass_through(self):
        assert deep_copy_document(42) == 42
        assert deep_copy_document("text") == "text"


class TestWireFormat:
    def test_round_trip_plain_document(self):
        document = {"name": "earl", "age": 36, "nested": {"tags": ["a", "b"]}}
        assert decode_document(encode_document(document)) == document

    def test_round_trip_objectid(self):
        document = {"_id": ObjectId()}
        decoded = decode_document(encode_document(document))
        assert decoded["_id"] == document["_id"]

    def test_round_trip_dates(self):
        document = {
            "day": datetime.date(2002, 5, 29),
            "timestamp": datetime.datetime(2002, 5, 29, 10, 30),
        }
        decoded = decode_document(encode_document(document))
        assert decoded == document

    def test_round_trip_bytes(self):
        document = {"blob": b"\x00\x01\x02"}
        assert decode_document(encode_document(document)) == document

    def test_batch_round_trip(self):
        documents = [{"i": i} for i in range(10)]
        assert decode_batch(encode_batch(documents)) == documents


_KEYS = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
_SCALARS = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(alphabet="xyz ", max_size=10)
)


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        _KEYS,
        st.recursive(
            _SCALARS,
            lambda children: st.lists(children, max_size=3)
            | st.dictionaries(_KEYS, children, max_size=3),
            max_leaves=8,
        ),
        max_size=5,
    )
)
def test_wire_format_round_trips_arbitrary_documents(document):
    """Any JSON-like document survives the simulated wire."""
    try:
        validate_document(document, check_size=False)
    except InvalidDocumentError:
        return  # documents our validator rejects need not round-trip
    assert decode_document(encode_document(document)) == document
