"""Tests for ObjectId generation and parsing."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.documentstore import ObjectId


class TestGeneration:
    def test_new_ids_are_unique(self):
        ids = {str(ObjectId()) for _ in range(1000)}
        assert len(ids) == 1000

    def test_id_is_twelve_bytes(self):
        assert len(ObjectId().binary) == 12

    def test_hex_string_is_24_characters(self):
        assert len(str(ObjectId())) == 24

    def test_generation_time_embeds_timestamp(self):
        oid = ObjectId(timestamp=1_500_000_000)
        assert oid.generation_time == 1_500_000_000

    def test_ids_sort_by_generation_time(self):
        older = ObjectId(timestamp=1_000_000_000)
        newer = ObjectId(timestamp=2_000_000_000)
        assert older < newer
        assert newer > older


class TestParsing:
    def test_round_trip_through_hex(self):
        original = ObjectId()
        assert ObjectId(str(original)) == original

    def test_round_trip_through_bytes(self):
        original = ObjectId()
        assert ObjectId(original.binary) == original

    def test_copy_constructor(self):
        original = ObjectId()
        assert ObjectId(original) == original

    def test_invalid_hex_length_rejected(self):
        with pytest.raises(ValueError):
            ObjectId("abc")

    def test_invalid_hex_characters_rejected(self):
        with pytest.raises(ValueError):
            ObjectId("zz" * 12)

    def test_invalid_bytes_length_rejected(self):
        with pytest.raises(ValueError):
            ObjectId(b"short")

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ObjectId(12345)

    def test_is_valid(self):
        assert ObjectId.is_valid(str(ObjectId()))
        assert not ObjectId.is_valid("nope")
        assert not ObjectId.is_valid(3.14)


class TestEqualityAndHashing:
    def test_equal_ids_hash_equal(self):
        oid = ObjectId()
        assert hash(ObjectId(str(oid))) == hash(oid)

    def test_inequality_with_other_types(self):
        assert ObjectId() != "not an oid"

    def test_usable_as_dict_key(self):
        oid = ObjectId()
        lookup = {oid: "value"}
        assert lookup[ObjectId(str(oid))] == "value"

    def test_repr_round_trips(self):
        oid = ObjectId()
        assert repr(oid) == f"ObjectId('{oid}')"


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_generation_time_property(timestamp):
    """The embedded timestamp always round-trips."""
    assert ObjectId(timestamp=timestamp).generation_time == timestamp
