"""Vector index: structured specs, maintenance protocol, exact and IVF search."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.documentstore import (
    DocumentStoreClient,
    IndexSpec,
    OperationFailure,
    VectorIndex,
    vector_score,
)


def make_collection():
    return DocumentStoreClient()["db"]["items"]


def embedding_docs(n, dims=4):
    return [
        {"_id": i, "embedding": [float((i * 7 + axis * 3) % 13) for axis in range(dims)], "tag": i % 3}
        for i in range(n)
    ]


def reference_topk(documents, query, k, metric="cosine", field="embedding"):
    """Brute-force reference ranking, independent of the index internals."""
    query_norm = math.sqrt(sum(x * x for x in query))
    scored = []
    for doc in documents:
        vector = doc.get(field)
        if vector is None:
            continue
        norm = math.sqrt(sum(x * x for x in vector))
        score = vector_score(metric, query, query_norm, vector, norm)
        scored.append((-score, doc["_id"], doc))
    scored.sort(key=lambda entry: (entry[0], entry[1]))
    return [(doc["_id"], -negated) for negated, _id, doc in scored[:k]]


# ---------------------------------------------------------------- spec shapes


class TestStructuredSpecs:
    def test_structured_btree_spec(self):
        spec = IndexSpec.from_key_specification(
            {"keys": [["store", 1], ["amount", -1]], "type": "btree", "unique": True}
        )
        assert spec.keys == (("store", 1), ("amount", -1))
        assert spec.unique is True
        assert spec.type == "btree"

    def test_structured_vector_spec_and_describe_roundtrip(self):
        spec = IndexSpec.from_key_specification(
            {"keys": ["embedding"], "type": "vector", "dims": 8, "metric": "l2", "nlist": 32}
        )
        assert spec.is_vector
        assert spec.dims == 8
        assert spec.metric == "l2"
        assert spec.nlist == 32
        assert spec.name == "embedding_vector"
        rebuilt = IndexSpec.from_key_specification(spec.describe())
        assert rebuilt == spec

    def test_btree_describe_roundtrip(self):
        spec = IndexSpec.from_key_specification([("a", 1), ("b", -1)], unique=True)
        assert IndexSpec.from_key_specification(spec.describe()) == spec

    def test_vector_spec_requires_dims(self):
        with pytest.raises(OperationFailure, match="dims"):
            IndexSpec.from_key_specification({"keys": ["embedding"], "type": "vector"})

    def test_vector_spec_rejects_unique(self):
        with pytest.raises(OperationFailure):
            IndexSpec.from_key_specification(
                {"keys": ["embedding"], "type": "vector", "dims": 4, "unique": True}
            )

    def test_vector_spec_rejects_unknown_metric(self):
        with pytest.raises(OperationFailure, match="metric"):
            IndexSpec.from_key_specification(
                {"keys": ["embedding"], "type": "vector", "dims": 4, "metric": "dot"}
            )

    def test_vector_spec_single_key_only(self):
        with pytest.raises(OperationFailure):
            IndexSpec.from_key_specification(
                {"keys": ["a", "b"], "type": "vector", "dims": 4}
            )

    def test_unknown_structured_field_rejected(self):
        with pytest.raises(OperationFailure, match="bogus"):
            IndexSpec.from_key_specification({"keys": ["a"], "bogus": 1})

    def test_btree_spec_rejects_vector_options(self):
        with pytest.raises(OperationFailure):
            IndexSpec.from_key_specification({"keys": ["a"], "type": "btree", "dims": 4})

    def test_legacy_sugar_still_works(self):
        collection = make_collection()
        assert collection.create_index("store") == "store_1"
        assert collection.create_index([("a", 1), ("b", -1)]) == "a_1_b_-1"


class TestCollectionCatalog:
    def test_create_and_list_vector_index(self):
        collection = make_collection()
        collection.insert_many(embedding_docs(10))
        name = collection.create_index(
            {"keys": ["embedding"], "type": "vector", "dims": 4, "metric": "cosine"}
        )
        assert name == "embedding_vector"
        specs = {spec["name"]: spec for spec in collection.list_indexes()}
        assert specs["embedding_vector"]["type"] == "vector"
        assert specs["embedding_vector"]["dims"] == 4
        assert specs["embedding_vector"]["metric"] == "cosine"
        assert specs["_id_"]["type"] == "btree"
        info = collection.index_information()["embedding_vector"]
        assert info["type"] == "vector"
        assert info["dims"] == 4

    def test_vector_index_never_serves_finds(self):
        collection = make_collection()
        collection.insert_many(embedding_docs(10))
        collection.create_index({"keys": ["embedding"], "type": "vector", "dims": 4})
        plan = collection.explain({"embedding": [1.0, 2.0, 3.0, 4.0]})
        assert plan["queryPlanner"]["winningPlan"]["stage"] == "COLLSCAN"


# ------------------------------------------------------------- maintenance


class TestMaintenance:
    def build(self, n=20):
        collection = make_collection()
        collection.insert_many(embedding_docs(n))
        collection.create_index({"keys": ["embedding"], "type": "vector", "dims": 4})
        return collection

    def search_ids(self, collection, query, k):
        results = collection.aggregate(
            [{"$vectorSearch": {"queryVector": query, "k": k}}]
        )
        return [doc["_id"] for doc in results]

    def test_insert_update_delete_maintain_index(self):
        collection = self.build()
        query = [100.0, 100.0, 100.0, 100.0]
        collection.insert_one({"_id": 999, "embedding": [100.0, 100.0, 100.0, 100.0]})
        assert self.search_ids(collection, query, 1) == [999]
        collection.update_one({"_id": 999}, {"$set": {"embedding": [-1.0, 0.0, 0.0, 0.0]}})
        assert self.search_ids(collection, query, 1) != [999]
        collection.delete_many({"_id": 999})
        assert 999 not in self.search_ids(collection, query, 25)

    def test_documents_without_embedding_are_skipped(self):
        collection = self.build(5)
        collection.insert_one({"_id": 1000, "tag": 0})
        assert 1000 not in self.search_ids(collection, [1.0, 0.0, 0.0, 0.0], 10)

    def test_malformed_embedding_rejected_and_rolled_back(self):
        collection = self.build(5)
        before = collection.count_documents()
        with pytest.raises(OperationFailure):
            collection.insert_many(
                [
                    {"_id": 2000, "embedding": [1.0, 2.0, 3.0, 4.0]},
                    {"_id": 2001, "embedding": [1.0, 2.0]},  # wrong dims
                ]
            )
        assert collection.count_documents() == before
        assert 2000 not in self.search_ids(collection, [1.0, 2.0, 3.0, 4.0], 10)

    def test_malformed_update_leaves_old_entry(self):
        collection = self.build(5)
        with pytest.raises(OperationFailure):
            collection.update_one({"_id": 0}, {"$set": {"embedding": "nope"}})
        assert 0 in self.search_ids(collection, [0.0, 3.0, 6.0, 9.0], 5)

    def test_deferred_build_via_bulk_load(self):
        collection = make_collection()
        with collection.bulk_load():
            collection.create_index(
                {"keys": ["embedding"], "type": "vector", "dims": 4}, defer=True
            )
            collection.insert_many(embedding_docs(30))
        assert len(self.search_ids(collection, [1.0, 1.0, 1.0, 1.0], 5)) == 5


# ------------------------------------------------------------------ search


class TestExactSearch:
    def test_exact_topk_matches_reference(self):
        documents = embedding_docs(50)
        collection = make_collection()
        collection.insert_many(documents)
        collection.create_index({"keys": ["embedding"], "type": "vector", "dims": 4})
        query = [3.0, 1.0, 4.0, 1.0]
        results = collection.aggregate(
            [{"$vectorSearch": {"queryVector": query, "k": 7}}]
        )
        expected = reference_topk(documents, query, 7)
        assert [(doc["_id"], doc["_score"]) for doc in results] == expected

    def test_l2_metric_matches_reference(self):
        documents = embedding_docs(40)
        collection = make_collection()
        collection.insert_many(documents)
        collection.create_index(
            {"keys": ["embedding"], "type": "vector", "dims": 4, "metric": "l2"}
        )
        query = [5.0, 5.0, 5.0, 5.0]
        results = collection.aggregate(
            [{"$vectorSearch": {"queryVector": query, "k": 5}}]
        )
        expected = reference_topk(documents, query, 5, metric="l2")
        assert [(doc["_id"], doc["_score"]) for doc in results] == expected

    @settings(max_examples=30, deadline=None)
    @given(
        vectors=st.lists(
            st.lists(
                st.floats(min_value=-50, max_value=50, allow_nan=False, width=32),
                min_size=3,
                max_size=3,
            ),
            min_size=1,
            max_size=40,
        ),
        query=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False, width=32),
            min_size=3,
            max_size=3,
        ),
        k=st.integers(min_value=1, max_value=10),
    )
    def test_exact_search_equals_reference_property(self, vectors, query, k):
        spec = IndexSpec.from_key_specification(
            {"keys": ["embedding"], "type": "vector", "dims": 3}
        )
        index = VectorIndex(spec)
        documents = [{"_id": i, "embedding": vector} for i, vector in enumerate(vectors)]
        for i, doc in enumerate(documents):
            index.insert(doc, i)
        ranked, scored = index.search(query, k, exact=True)
        assert scored == len(vectors)
        expected = reference_topk(documents, query, k)
        assert [(doc_id, score) for doc_id, score in ranked] == expected


class TestIVF:
    def build_trained(self, n=600, dims=4):
        collection = make_collection()
        collection.insert_many(embedding_docs(n, dims))
        collection.create_index(
            {"keys": ["embedding"], "type": "vector", "dims": dims}
        )
        index = collection._live_indexes()["embedding_vector"]
        assert index.trained, "rebuild over >=256 vectors must train IVF"
        return collection, index

    def test_training_is_deterministic(self):
        _collection1, index1 = self.build_trained()
        _collection2, index2 = self.build_trained()
        assert index1._centroids == index2._centroids
        assert index1._lists == index2._lists

    def test_full_probe_equals_exact(self):
        collection, index = self.build_trained()
        query = [6.0, 2.0, 8.0, 3.0]
        exact, _ = index.search(query, 10, exact=True)
        approximate, _ = index.search(query, 10, nprobe=index.nlist)
        assert approximate == exact

    def test_ivf_scores_fewer_vectors(self):
        collection, index = self.build_trained()
        query = [6.0, 2.0, 8.0, 3.0]
        _, scored_exact = index.search(query, 10, exact=True)
        _, scored_ivf = index.search(query, 10, nprobe=1)
        assert scored_exact == len(index)
        assert scored_ivf < scored_exact

    def test_prefiltered_search_is_exact_over_subset(self):
        collection, index = self.build_trained()
        allowed = set(sorted(index._vectors)[:50])  # internal doc ids
        ranked, scored = index.search([1.0, 1.0, 1.0, 1.0], 5, allowed_ids=allowed)
        assert scored == len(allowed)
        assert all(doc_id in allowed for doc_id, _score in ranked)

    def test_small_collections_stay_untrained(self):
        collection = make_collection()
        collection.insert_many(embedding_docs(20))
        collection.create_index({"keys": ["embedding"], "type": "vector", "dims": 4})
        index = collection._live_indexes()["embedding_vector"]
        assert not index.trained
        assert index.train() is False
        assert index.train(force=True) is True
