"""Property tests for the compiled matcher / expression layer.

The compiled forms — ``compile_matcher(q)(doc)`` and
``compile_expression(e)(doc)`` — must agree with the reference one-shot
forms ``matches_document(doc, q)`` and ``evaluate_expression(e, doc)`` for
every query/expression in the supported language, across the operator
matrix, dotted paths, and array (multikey) semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.documentstore import (
    Collection,
    compile_expression,
    compile_matcher,
    evaluate_expression,
    matches_document,
)


DOCUMENTS = [
    {},
    {"a": 1},
    {"a": 0, "b": None},
    {"a": 1.0, "b": "x"},
    {"a": True},
    {"a": None},
    {"a": [1, 2, 3]},
    {"a": [], "b": 2},
    {"a": {"b": 2}},
    {"a": {"b": [1, 2]}},
    {"a": [{"b": 1}, {"b": 2}]},
    {"a": [{"b": [3, 4]}]},
    {"a": "1"},
    {"a": [None]},
    {"a": {"c": 5}, "b": [{"c": 6}]},
]

QUERIES = [
    None,
    {},
    {"a": 1},
    {"a": None},
    {"a": [1, 2, 3]},
    {"a": {"$eq": 1}},
    {"a": {"$ne": 1}},
    {"a": {"$gt": 0}},
    {"a": {"$gte": 1}},
    {"a": {"$lt": 2}},
    {"a": {"$lte": 1}},
    {"a": {"$gt": 0, "$lt": 2}},
    {"a": {"$in": [1, "x", None]}},
    {"a": {"$in": [[1, 2, 3]]}},
    {"a": {"$nin": [1, 2]}},
    {"a": {"$exists": True}},
    {"a": {"$exists": False}},
    {"a.b": {"$exists": True}},
    {"a": {"$type": "int"}},
    {"a": {"$type": "array"}},
    {"a": {"$type": "null"}},
    {"b": {"$regex": "^x"}},
    {"a": {"$mod": [2, 1]}},
    {"a": {"$size": 3}},
    {"a": {"$size": 0}},
    {"a": {"$all": [1, 2]}},
    {"a": {"$elemMatch": {"b": {"$gt": 1}}}},
    {"a": {"$not": {"$gt": 0}}},
    {"a": {"$not": 1}},
    {"a.b": 2},
    {"a.b": {"$in": [1, 4]}},
    {"a.0": 1},
    {"$and": [{"a": {"$gte": 0}}, {"a": {"$lte": 2}}]},
    {"$or": [{"a": 1}, {"b": 2}]},
    {"$nor": [{"a": 1}, {"b": 2}]},
    {"$and": [{"$or": [{"a": 1}, {"a.b": 2}]}, {"b": {"$exists": False}}]},
    {"$expr": {"$gt": ["$a", 0]}},
    {"$expr": {"$eq": ["$a.b", 2]}},
]


class TestCompiledMatcherMatrix:
    @pytest.mark.parametrize("query", QUERIES, ids=[repr(q) for q in QUERIES])
    def test_compiled_matches_reference(self, query):
        predicate = compile_matcher(query)
        for document in DOCUMENTS:
            assert predicate(document) == matches_document(document, query), (
                query,
                document,
            )

    def test_compiled_predicate_is_reusable(self):
        predicate = compile_matcher({"a": {"$gte": 1}})
        assert [predicate(d) for d in ({"a": 1}, {"a": 0}, {"a": 2})] == [True, False, True]


_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    st.text(alphabet="abxy", max_size=3),
)

_VALUES = st.recursive(
    _SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.sampled_from(["a", "b", "c"]), children, max_size=3),
    ),
    max_leaves=6,
)

_DOCS = st.dictionaries(st.sampled_from(["a", "b", "c"]), _VALUES, max_size=3)


@given(document=_DOCS, operand=_VALUES, operator=st.sampled_from(
    ["$eq", "$ne", "$gt", "$gte", "$lt", "$lte"]
))
@settings(max_examples=200, deadline=None)
def test_property_comparison_operators_agree(document, operand, operator):
    query = {"a": {operator: operand}}
    assert compile_matcher(query)(document) == matches_document(document, query)


@given(document=_DOCS, choices=st.lists(_SCALARS, min_size=1, max_size=4),
       operator=st.sampled_from(["$in", "$nin"]))
@settings(max_examples=200, deadline=None)
def test_property_set_operators_agree(document, choices, operator):
    query = {"a": {operator: choices}}
    assert compile_matcher(query)(document) == matches_document(document, query)


@given(document=_DOCS, left=_SCALARS, right=_SCALARS)
@settings(max_examples=150, deadline=None)
def test_property_logical_trees_agree(document, left, right):
    query = {
        "$or": [
            {"a": left},
            {"$and": [{"b": {"$ne": right}}, {"c": {"$exists": True}}]},
            {"$nor": [{"a.b": right}]},
        ]
    }
    assert compile_matcher(query)(document) == matches_document(document, query)


EXPRESSIONS = [
    "$a",
    "$a.b",
    "$$ROOT",
    "$$CURRENT.a",
    "literal-string",
    7,
    None,
    True,
    {"$literal": "$a"},
    {"$add": ["$a", 1]},
    {"$subtract": [10, "$a"]},
    {"$multiply": ["$a", "$a"]},
    {"$cond": {"if": {"$gt": ["$a", 0]}, "then": "pos", "else": "neg"}},
    {"$cond": [{"$lte": ["$a", 0]}, 0, 1]},
    {"$ifNull": ["$missing", "$a", -1]},
    {"$eq": ["$a", 1]},
    {"$ne": ["$a", "$b"]},
    {"$cmp": ["$a", "$b"]},
    {"$in": ["$a", [1, 2, 3]]},
    {"$min": [3, "$a", None]},
    {"$max": "$list"},
    {"$sum": ["$a", "$list"]},
    {"$avg": "$list"},
    {"$and": [{"$gt": ["$a", 0]}, {"$lt": ["$a", 10]}]},
    {"$or": ["$missing", "$a"]},
    {"$not": ["$a"]},
    {"$concat": ["x", "$s"]},
    {"$toUpper": "$s"},
    {"$toString": "$a"},
    {"nested": {"value": "$a", "twice": {"$add": ["$a", "$a"]}}},
    ["$a", {"$add": [1, 1]}],
]


class TestCompiledExpressions:
    @staticmethod
    def _outcome(thunk):
        try:
            return ("value", thunk())
        except Exception as exc:  # noqa: BLE001 - comparing error behaviour
            return ("error", type(exc), str(exc))

    @pytest.mark.parametrize("expression", EXPRESSIONS, ids=[repr(e) for e in EXPRESSIONS])
    def test_compiled_matches_interpreter(self, expression):
        for document in (
            {"a": 1, "b": 2, "s": "hi", "list": [1, 2, 3]},
            {"a": None, "b": 0, "s": "x", "list": []},
            {"a": {"b": 4}, "s": "Y", "list": [5]},
        ):
            compiled = self._outcome(lambda: compile_expression(expression)(document))
            interpreted = self._outcome(lambda: evaluate_expression(expression, document))
            assert compiled == interpreted


class TestPlannerEdgeCases:
    """$in combined with range bounds on a compound-index prefix."""

    @pytest.fixture()
    def collection(self):
        collection = Collection(None, "events")
        collection.insert_many(
            [
                {"store": i % 5, "day": i % 20, "amount": i}
                for i in range(400)
            ]
        )
        collection.create_index([("store", 1), ("day", 1)])
        return collection

    def _results_match_collscan(self, collection, query):
        planned = collection.find(query).to_list()
        predicate = compile_matcher(query)
        expected = [d for d in collection.all_documents() if predicate(d)]
        assert sorted(d["amount"] for d in planned) == sorted(
            d["amount"] for d in expected
        )
        return planned

    def test_in_on_prefix_with_range_on_suffix(self, collection):
        query = {"store": {"$in": [1, 3]}, "day": {"$gte": 5, "$lt": 10}}
        plan = collection.explain(query)["queryPlanner"]["winningPlan"]
        assert plan["stage"] == "IXSCAN"
        results = self._results_match_collscan(collection, query)
        assert results

    def test_in_and_range_on_same_leading_field(self, collection):
        query = {"store": {"$in": [0, 2], "$gte": 1}}
        self._results_match_collscan(collection, query)

    def test_range_on_prefix_in_on_suffix(self, collection):
        query = {"store": {"$gt": 1}, "day": {"$in": [3, 4]}}
        self._results_match_collscan(collection, query)

    def test_in_with_unindexed_extra_filter(self, collection):
        query = {"store": {"$in": [2]}, "amount": {"$lt": 100}}
        plan = collection.explain(query)["queryPlanner"]["winningPlan"]
        assert plan["stage"] == "IXSCAN"
        self._results_match_collscan(collection, query)
