"""Tests for update-operator application."""

from __future__ import annotations

import pytest

from repro.documentstore import InvalidUpdateError
from repro.documentstore.update import apply_update, build_upsert_document, is_update_document


class TestIsUpdateDocument:
    def test_operator_document(self):
        assert is_update_document({"$set": {"a": 1}})

    def test_replacement_document(self):
        assert not is_update_document({"a": 1})

    def test_empty_document(self):
        assert not is_update_document({})

    def test_mixed_document_rejected(self):
        with pytest.raises(InvalidUpdateError):
            is_update_document({"$set": {"a": 1}, "b": 2})


class TestSetAndUnset:
    def test_set_top_level_field(self):
        assert apply_update({"a": 1}, {"$set": {"b": 2}}) == {"a": 1, "b": 2}

    def test_set_overwrites(self):
        assert apply_update({"a": 1}, {"$set": {"a": 9}}) == {"a": 9}

    def test_set_dotted_path_creates_parents(self):
        updated = apply_update({}, {"$set": {"address.city": "Midway"}})
        assert updated == {"address": {"city": "Midway"}}

    def test_set_replaces_foreign_key_with_document(self):
        """The EmbedDocuments update of Figure 4.7, step 10."""
        sale = {"ss_item_sk": 42, "ss_quantity": 3}
        item = {"i_item_sk": 42, "i_item_id": "AAAA42"}
        updated = apply_update(sale, {"$set": {"ss_item_sk": item}})
        assert updated["ss_item_sk"] == item
        assert updated["ss_quantity"] == 3

    def test_original_document_is_not_mutated(self):
        original = {"a": {"b": 1}}
        apply_update(original, {"$set": {"a.b": 2}})
        assert original == {"a": {"b": 1}}

    def test_set_value_is_copied(self):
        payload = {"nested": [1, 2]}
        updated = apply_update({}, {"$set": {"field": payload}})
        payload["nested"].append(3)
        assert updated["field"]["nested"] == [1, 2]

    def test_unset_removes_field(self):
        assert apply_update({"a": 1, "b": 2}, {"$unset": {"b": ""}}) == {"a": 1}

    def test_unset_missing_field_is_noop(self):
        assert apply_update({"a": 1}, {"$unset": {"zzz": ""}}) == {"a": 1}

    def test_unset_dotted_path(self):
        updated = apply_update({"a": {"b": 1, "c": 2}}, {"$unset": {"a.b": ""}})
        assert updated == {"a": {"c": 2}}


class TestArithmeticOperators:
    def test_inc(self):
        assert apply_update({"n": 5}, {"$inc": {"n": 3}})["n"] == 8

    def test_inc_missing_field_starts_at_zero(self):
        assert apply_update({}, {"$inc": {"n": 3}})["n"] == 3

    def test_inc_non_numeric_rejected(self):
        with pytest.raises(InvalidUpdateError):
            apply_update({"n": "text"}, {"$inc": {"n": 1}})

    def test_mul(self):
        assert apply_update({"n": 5}, {"$mul": {"n": 3}})["n"] == 15

    def test_min_and_max(self):
        assert apply_update({"n": 5}, {"$min": {"n": 3}})["n"] == 3
        assert apply_update({"n": 5}, {"$min": {"n": 7}})["n"] == 5
        assert apply_update({"n": 5}, {"$max": {"n": 7}})["n"] == 7

    def test_rename(self):
        assert apply_update({"old": 1}, {"$rename": {"old": "new"}}) == {"new": 1}


class TestArrayOperators:
    def test_push(self):
        assert apply_update({"tags": ["a"]}, {"$push": {"tags": "b"}})["tags"] == ["a", "b"]

    def test_push_each(self):
        updated = apply_update({"tags": []}, {"$push": {"tags": {"$each": ["a", "b"]}}})
        assert updated["tags"] == ["a", "b"]

    def test_push_creates_array(self):
        assert apply_update({}, {"$push": {"tags": "a"}})["tags"] == ["a"]

    def test_push_on_non_array_rejected(self):
        with pytest.raises(InvalidUpdateError):
            apply_update({"tags": 5}, {"$push": {"tags": "a"}})

    def test_add_to_set_skips_duplicates(self):
        updated = apply_update({"tags": ["a"]}, {"$addToSet": {"tags": "a"}})
        assert updated["tags"] == ["a"]

    def test_pull_by_value(self):
        updated = apply_update({"tags": ["a", "b", "a"]}, {"$pull": {"tags": "a"}})
        assert updated["tags"] == ["b"]

    def test_pull_by_condition(self):
        updated = apply_update({"scores": [1, 5, 9]}, {"$pull": {"scores": {"$gt": 4}}})
        assert updated["scores"] == [1]

    def test_pop_first_and_last(self):
        assert apply_update({"v": [1, 2, 3]}, {"$pop": {"v": 1}})["v"] == [1, 2]
        assert apply_update({"v": [1, 2, 3]}, {"$pop": {"v": -1}})["v"] == [2, 3]


class TestReplacementAndUpsert:
    def test_replacement_keeps_id(self):
        updated = apply_update({"_id": 7, "a": 1}, {"b": 2})
        assert updated == {"b": 2, "_id": 7}

    def test_unknown_operator_rejected(self):
        with pytest.raises(InvalidUpdateError):
            apply_update({}, {"$explode": {"a": 1}})

    def test_upsert_document_seeds_equality_fields(self):
        document = build_upsert_document({"sku": "X1", "qty": {"$gt": 5}}, {"$set": {"price": 2.5}})
        assert document == {"sku": "X1", "price": 2.5}

    def test_upsert_honours_set_on_insert(self):
        document = build_upsert_document({"sku": "X1"}, {"$setOnInsert": {"created": True}})
        assert document["created"] is True

    def test_set_on_insert_skipped_on_normal_update(self):
        updated = apply_update({"a": 1}, {"$setOnInsert": {"created": True}})
        assert "created" not in updated
