"""Tests for collection CRUD, cursors, and the query planner integration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.documentstore import (
    Collection,
    DocumentStoreClient,
    DocumentTooLargeError,
    DuplicateKeyError,
    OperationFailure,
)


@pytest.fixture()
def people():
    collection = Collection(None, "people")
    collection.insert_many(
        [
            {"name": "earl", "age": 36, "city": "Midway", "tags": ["a", "b"]},
            {"name": "anna", "age": 28, "city": "Fairview"},
            {"name": "james", "age": 51, "city": "Midway"},
            {"name": "maria", "age": 28, "city": "Salem"},
        ]
    )
    return collection


class TestInsert:
    def test_insert_one_assigns_objectid(self):
        collection = Collection(None, "c")
        result = collection.insert_one({"a": 1})
        assert result.inserted_id is not None
        assert collection.count_documents({}) == 1

    def test_insert_preserves_explicit_id(self):
        collection = Collection(None, "c")
        collection.insert_one({"_id": 7, "a": 1})
        assert collection.find_one({"_id": 7})["a"] == 1

    def test_insert_many_returns_all_ids(self):
        collection = Collection(None, "c")
        result = collection.insert_many([{"i": i} for i in range(5)])
        assert len(result.inserted_ids) == 5

    def test_duplicate_id_rejected(self):
        collection = Collection(None, "c")
        collection.insert_one({"_id": 1})
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"_id": 1})

    def test_inserted_document_is_copied(self):
        collection = Collection(None, "c")
        source = {"nested": {"v": 1}}
        collection.insert_one(source)
        source["nested"]["v"] = 99
        assert collection.find_one({})["nested"]["v"] == 1

    def test_oversized_document_rejected(self):
        collection = Collection(None, "c")
        with pytest.raises(DocumentTooLargeError):
            collection.insert_one({"payload": "x" * (17 * 1024 * 1024)})

    def test_invalid_collection_name_rejected(self):
        with pytest.raises(OperationFailure):
            Collection(None, "")


class TestFind:
    def test_find_all(self, people):
        assert len(people.find({}).to_list()) == 4

    def test_find_with_filter(self, people):
        assert {doc["name"] for doc in people.find({"city": "Midway"})} == {"earl", "james"}

    def test_find_one_returns_none_when_missing(self, people):
        assert people.find_one({"name": "nobody"}) is None

    def test_cursor_sort_skip_limit(self, people):
        names = [doc["name"] for doc in people.find({}).sort("age", 1).skip(1).limit(2)]
        assert names == ["maria", "earl"] or names == ["anna", "earl"]

    def test_cursor_sort_descending(self, people):
        ages = [doc["age"] for doc in people.find({}).sort("age", -1)]
        assert ages == sorted(ages, reverse=True)

    def test_cursor_has_next_protocol(self, people):
        cursor = people.find({"city": "Midway"})
        seen = []
        while cursor.alive:
            seen.append(cursor.next()["name"])
        assert len(seen) == 2

    def test_cursor_cannot_be_modified_after_iteration(self, people):
        cursor = people.find({})
        list(cursor)
        with pytest.raises(OperationFailure):
            cursor.limit(1)

    def test_projection_inclusion(self, people):
        document = people.find_one({"name": "earl"}, {"name": 1, "_id": 0})
        assert document == {"name": "earl"}

    def test_projection_exclusion(self, people):
        document = people.find_one({"name": "earl"}, {"tags": 0, "_id": 0})
        assert "tags" not in document and "age" in document

    def test_returned_documents_are_copies(self, people):
        document = people.find_one({"name": "earl"})
        document["age"] = 999
        assert people.find_one({"name": "earl"})["age"] == 36

    def test_count_documents(self, people):
        assert people.count_documents({"age": 28}) == 2
        assert people.count_documents({}) == 4

    def test_distinct(self, people):
        assert sorted(people.distinct("city")) == ["Fairview", "Midway", "Salem"]

    def test_distinct_unwinds_arrays(self, people):
        assert sorted(people.distinct("tags")) == ["a", "b"]


class TestPlannerIntegration:
    def test_collscan_without_index(self, people):
        plan = people.explain({"age": 36})["queryPlanner"]["winningPlan"]
        assert plan["stage"] == "COLLSCAN"

    def test_ixscan_with_index(self, people):
        people.create_index("age")
        plan = people.explain({"age": 36})["queryPlanner"]["winningPlan"]
        assert plan["stage"] == "IXSCAN"
        assert plan["indexName"] == "age_1"

    def test_index_and_collscan_return_same_results(self, people):
        without_index = {doc["name"] for doc in people.find({"age": {"$gte": 30}})}
        people.create_index("age")
        with_index = {doc["name"] for doc in people.find({"age": {"$gte": 30}})}
        assert with_index == without_index

    def test_compound_index_prefix_used(self, people):
        people.create_index([("city", 1), ("age", 1)])
        plan = people.explain({"city": "Midway"})["queryPlanner"]["winningPlan"]
        assert plan["stage"] == "IXSCAN"

    def test_or_query_falls_back_to_collscan(self, people):
        people.create_index("age")
        plan = people.explain({"$or": [{"age": 36}, {"city": "Salem"}]})
        assert plan["queryPlanner"]["winningPlan"]["stage"] == "COLLSCAN"

    def test_index_information_lists_id_index(self, people):
        assert "_id_" in people.index_information()

    def test_drop_index(self, people):
        name = people.create_index("age")
        people.drop_index(name)
        assert name not in people.index_information()

    def test_cannot_drop_id_index(self, people):
        with pytest.raises(OperationFailure):
            people.drop_index("_id_")


class TestUpdateAndDelete:
    def test_update_one_modifies_first_match(self, people):
        result = people.update_one({"age": 28}, {"$set": {"flag": True}})
        assert result.matched_count == 1
        assert people.count_documents({"flag": True}) == 1

    def test_update_many_modifies_all_matches(self, people):
        result = people.update_many({"age": 28}, {"$set": {"flag": True}})
        assert result.modified_count == 2

    def test_update_maintains_indexes(self, people):
        people.create_index("age")
        people.update_many({"name": "earl"}, {"$set": {"age": 99}})
        assert people.find_one({"age": 99})["name"] == "earl"
        assert people.explain({"age": 99})["queryPlanner"]["winningPlan"]["stage"] == "IXSCAN"

    def test_upsert_inserts_when_no_match(self, people):
        result = people.update_one({"name": "newbie"}, {"$set": {"age": 1}}, upsert=True)
        assert result.upserted_id is not None
        assert people.find_one({"name": "newbie"})["age"] == 1

    def test_update_cannot_change_id(self, people):
        with pytest.raises(OperationFailure):
            people.update_one({"name": "earl"}, {"$set": {"_id": 123}})

    def test_replace_one(self, people):
        people.replace_one({"name": "earl"}, {"name": "earl", "replaced": True})
        document = people.find_one({"name": "earl"})
        assert document["replaced"] is True
        assert "age" not in document

    def test_update_many_requires_operators(self, people):
        with pytest.raises(OperationFailure):
            people.update_many({"name": "earl"}, {"plain": "replacement"})

    def test_delete_one(self, people):
        assert people.delete_one({"age": 28}).deleted_count == 1
        assert people.count_documents({"age": 28}) == 1

    def test_delete_many(self, people):
        assert people.delete_many({"age": 28}).deleted_count == 2

    def test_delete_maintains_indexes(self, people):
        people.create_index("age")
        people.delete_many({"city": "Midway"})
        assert people.count_documents({"age": 36}) == 0

    def test_drop_empties_collection(self, people):
        people.create_index("age")
        people.drop()
        assert people.count_documents({}) == 0
        assert list(people.index_information()) == ["_id_"]


class TestStats:
    def test_stats_counts_and_sizes(self, people):
        stats = people.stats()
        assert stats.count == 4
        assert stats.size_bytes > 0
        assert stats.as_dict()["count"] == 4

    def test_operation_counters_track_activity(self, people):
        people.find({"age": 36}).to_list()
        assert people.operation_counters["queries"] >= 1
        assert people.operation_counters["inserts"] == 4


class TestDatabaseAndClient:
    def test_database_creates_collections_lazily(self):
        client = DocumentStoreClient()
        database = client["db1"]
        database["c1"].insert_one({"a": 1})
        assert database.list_collection_names() == ["c1"]

    def test_create_collection_twice_fails(self):
        client = DocumentStoreClient()
        database = client["db1"]
        database.create_collection("c1")
        from repro.documentstore import CollectionInvalid

        with pytest.raises(CollectionInvalid):
            database.create_collection("c1")

    def test_drop_collection(self):
        client = DocumentStoreClient()
        database = client["db1"]
        database["c1"].insert_one({"a": 1})
        database.drop_collection("c1")
        assert database.list_collection_names() == []

    def test_database_stats_aggregate_collections(self):
        client = DocumentStoreClient()
        database = client["db1"]
        database["c1"].insert_many([{"a": 1}, {"a": 2}])
        stats = database.stats()
        assert stats["objects"] == 2
        assert stats["dataSize"] > 0

    def test_client_lists_and_drops_databases(self):
        client = DocumentStoreClient()
        client["db1"]["c"].insert_one({})
        client["db2"]["c"].insert_one({})
        assert client.list_database_names() == ["db1", "db2"]
        client.drop_database("db1")
        assert client["db1"]["c"].count_documents({}) == 0

    def test_attribute_access(self):
        client = DocumentStoreClient()
        client.analytics.events.insert_one({"type": "click"})
        assert client["analytics"]["events"].count_documents({}) == 1

    def test_server_info(self):
        assert "version" in DocumentStoreClient().server_info()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.fixed_dictionaries({"k": st.integers(0, 20), "v": st.integers(-5, 5)}),
        min_size=1,
        max_size=40,
    ),
    st.integers(0, 20),
)
def test_find_agrees_with_python_filter(rows, needle):
    """Property: collection filtering matches an equivalent list comprehension."""
    collection = Collection(None, "props")
    collection.insert_many(rows)
    expected = sorted(row["v"] for row in rows if row["k"] == needle)
    actual = sorted(doc["v"] for doc in collection.find({"k": needle}))
    assert actual == expected


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.fixed_dictionaries({"k": st.integers(0, 10), "v": st.integers(-5, 5)}),
        min_size=1,
        max_size=40,
    )
)
def test_update_many_touches_exactly_matching_documents(rows):
    """Property: update_many modifies exactly the matching documents."""
    collection = Collection(None, "props")
    collection.insert_many(rows)
    expected_matches = sum(1 for row in rows if row["k"] >= 5)
    result = collection.update_many({"k": {"$gte": 5}}, {"$set": {"touched": True}})
    assert result.matched_count == expected_matches
    assert collection.count_documents({"touched": True}) == expected_matches
