"""Tests for the aggregation pipeline (the Table 4.2 operator analogy)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.documentstore import (
    Collection,
    DocumentStoreClient,
    InvalidPipelineError,
    OperationFailure,
    run_pipeline,
    split_pipeline_for_shards,
)


SALES = [
    {"item": "A", "store": 1, "qty": 10, "price": 2.0, "tags": ["x", "y"]},
    {"item": "A", "store": 2, "qty": 5, "price": 2.5, "tags": ["x"]},
    {"item": "B", "store": 1, "qty": 7, "price": 1.0, "tags": []},
    {"item": "B", "store": 2, "qty": 1, "price": 3.0, "tags": ["z"]},
    {"item": "C", "store": 1, "qty": 4, "price": 9.0, "tags": ["x"]},
]


def collection_with(rows):
    collection = Collection(None, "sales")
    collection.insert_many(rows)
    return collection


class TestMatchProjectSortLimit:
    def test_match_filters_documents(self):
        result = run_pipeline(SALES, [{"$match": {"store": 1}}])
        assert len(result) == 3

    def test_project_inclusion_and_computed_fields(self):
        result = run_pipeline(
            SALES[:1],
            [{"$project": {"_id": 0, "item": 1, "total": {"$multiply": ["$qty", "$price"]}}}],
        )
        assert result == [{"item": "A", "total": 20.0}]

    def test_project_exclusion(self):
        result = run_pipeline(SALES[:1], [{"$project": {"tags": 0, "_id": 0}}])
        assert "tags" not in result[0] and "item" in result[0]

    def test_project_renames_via_field_path(self):
        """The thesis pipelines project ``i_item_id: "$_id"`` after grouping."""
        result = run_pipeline([{"_id": "X", "v": 1}], [{"$project": {"item_id": "$_id", "v": 1}}])
        assert result[0]["item_id"] == "X"

    def test_sort_ascending_and_descending(self):
        ascending = run_pipeline(SALES, [{"$sort": {"qty": 1}}])
        descending = run_pipeline(SALES, [{"$sort": {"qty": -1}}])
        assert [doc["qty"] for doc in ascending] == sorted(doc["qty"] for doc in SALES)
        assert [doc["qty"] for doc in descending] == sorted(
            (doc["qty"] for doc in SALES), reverse=True
        )

    def test_sort_by_multiple_keys(self):
        result = run_pipeline(SALES, [{"$sort": {"item": 1, "qty": -1}}])
        assert [(doc["item"], doc["qty"]) for doc in result][:2] == [("A", 10), ("A", 5)]

    def test_limit_and_skip(self):
        assert len(run_pipeline(SALES, [{"$limit": 2}])) == 2
        assert len(run_pipeline(SALES, [{"$skip": 4}])) == 1

    def test_count_stage(self):
        assert run_pipeline(SALES, [{"$count": "n"}]) == [{"n": 5}]

    def test_add_fields(self):
        result = run_pipeline(SALES[:1], [{"$addFields": {"flag": True}}])
        assert result[0]["flag"] is True and result[0]["item"] == "A"


class TestGroup:
    def test_group_sum_and_avg(self):
        result = run_pipeline(
            SALES,
            [
                {"$group": {"_id": "$item", "total_qty": {"$sum": "$qty"}, "avg_price": {"$avg": "$price"}}},
                {"$sort": {"_id": 1}},
            ],
        )
        assert result[0] == {"_id": "A", "total_qty": 15, "avg_price": 2.25}

    def test_group_by_null_aggregates_everything(self):
        result = run_pipeline(SALES, [{"$group": {"_id": None, "n": {"$sum": 1}}}])
        assert result == [{"_id": None, "n": 5}]

    def test_group_by_compound_key(self):
        result = run_pipeline(
            SALES,
            [{"$group": {"_id": {"item": "$item", "store": "$store"}, "n": {"$sum": 1}}}],
        )
        assert len(result) == 5

    def test_group_min_max_first_last_push_addtoset(self):
        result = run_pipeline(
            SALES,
            [
                {"$sort": {"qty": 1}},
                {
                    "$group": {
                        "_id": None,
                        "minimum": {"$min": "$qty"},
                        "maximum": {"$max": "$qty"},
                        "first": {"$first": "$item"},
                        "last": {"$last": "$item"},
                        "all_items": {"$push": "$item"},
                        "distinct_stores": {"$addToSet": "$store"},
                    }
                },
            ],
        )[0]
        assert result["minimum"] == 1 and result["maximum"] == 10
        assert result["first"] == "B" and result["last"] == "A"
        assert len(result["all_items"]) == 5
        assert sorted(result["distinct_stores"]) == [1, 2]

    def test_group_conditional_sum_reproduces_sql_case(self):
        """``sum(case when ... then x else 0 end)`` — the Query 21/50 pattern."""
        result = run_pipeline(
            SALES,
            [
                {
                    "$group": {
                        "_id": None,
                        "cheap_qty": {
                            "$sum": {"$cond": [{"$lt": ["$price", 2.5]}, "$qty", 0]}
                        },
                    }
                }
            ],
        )
        assert result[0]["cheap_qty"] == 17

    def test_group_avg_ignores_missing_values(self):
        rows = [{"v": 2}, {"v": 4}, {"other": 1}]
        result = run_pipeline(rows, [{"$group": {"_id": None, "a": {"$avg": "$v"}}}])
        assert result[0]["a"] == 3

    def test_group_requires_id(self):
        with pytest.raises(InvalidPipelineError):
            run_pipeline(SALES, [{"$group": {"n": {"$sum": 1}}}])

    def test_group_rejects_unknown_accumulator(self):
        with pytest.raises(InvalidPipelineError):
            run_pipeline(SALES, [{"$group": {"_id": None, "n": {"$hyperloglog": "$qty"}}}])


class TestUnwindLookupOut:
    def test_unwind_expands_arrays(self):
        result = run_pipeline(SALES, [{"$unwind": "$tags"}])
        assert len(result) == 5  # x,y + x + z + x (empty array drops)

    def test_unwind_preserve_empty(self):
        result = run_pipeline(
            SALES,
            [{"$unwind": {"path": "$tags", "preserveNullAndEmptyArrays": True}}],
        )
        assert len(result) == 6

    def test_lookup_joins_sibling_collection(self):
        client = DocumentStoreClient()
        db = client["joinme"]
        db["orders"].insert_many([{"sku": "A", "qty": 1}, {"sku": "Z", "qty": 9}])
        db["items"].insert_many([{"sku": "A", "name": "Apple"}])
        result = db["orders"].aggregate(
            [
                {
                    "$lookup": {
                        "from": "items",
                        "localField": "sku",
                        "foreignField": "sku",
                        "as": "item",
                    }
                },
                {"$sort": {"sku": 1}},
            ]
        )
        assert result[0]["item"][0]["name"] == "Apple"
        assert result[1]["item"] == []

    def test_lookup_outside_database_context_fails(self):
        with pytest.raises(OperationFailure):
            run_pipeline(SALES, [{"$lookup": {"from": "x", "localField": "a", "foreignField": "b", "as": "j"}}])

    def test_out_writes_to_collection(self):
        client = DocumentStoreClient()
        db = client["outdb"]
        db["sales"].insert_many(SALES)
        returned = db["sales"].aggregate(
            [{"$group": {"_id": "$item", "n": {"$sum": 1}}}, {"$out": "per_item"}]
        )
        assert returned == []
        assert db["per_item"].count_documents({}) == 3

    def test_out_replaces_existing_collection(self):
        client = DocumentStoreClient()
        db = client["outdb"]
        db["sales"].insert_many(SALES)
        db["target"].insert_one({"stale": True})
        db["sales"].aggregate([{"$match": {"store": 1}}, {"$out": "target"}])
        assert db["target"].count_documents({"stale": True}) == 0
        assert db["target"].count_documents({}) == 3

    def test_out_must_be_last_stage(self):
        client = DocumentStoreClient()
        db = client["outdb"]
        db["sales"].insert_many(SALES)
        with pytest.raises(InvalidPipelineError):
            db["sales"].aggregate([{"$out": "target"}, {"$match": {}}])

    def test_replace_root(self):
        rows = [{"outer": 1, "inner": {"a": 1, "b": 2}}]
        result = run_pipeline(rows, [{"$replaceRoot": {"newRoot": "$inner"}}])
        assert result == [{"a": 1, "b": 2}]


class TestPipelineValidation:
    def test_unknown_stage_rejected(self):
        with pytest.raises(InvalidPipelineError):
            run_pipeline(SALES, [{"$teleport": {}}])

    def test_stage_must_have_single_key(self):
        with pytest.raises(InvalidPipelineError):
            run_pipeline(SALES, [{"$match": {}, "$limit": 1}])

    def test_empty_pipeline_returns_documents(self):
        assert len(run_pipeline(SALES, [])) == len(SALES)

    def test_aggregation_does_not_mutate_source_collection(self):
        collection = collection_with(SALES)
        collection.aggregate(
            [{"$addFields": {"computed": {"$multiply": ["$qty", 2]}}}, {"$sort": {"qty": 1}}]
        )
        assert all("computed" not in doc for doc in collection.find({}))


class TestShardSplit:
    def test_match_runs_on_shards_group_on_router(self):
        pipeline = [
            {"$match": {"store": 1}},
            {"$group": {"_id": "$item", "n": {"$sum": 1}}},
            {"$sort": {"_id": 1}},
        ]
        shard_part, merge_part = split_pipeline_for_shards(pipeline)
        assert [next(iter(stage)) for stage in shard_part] == ["$match"]
        assert [next(iter(stage)) for stage in merge_part] == ["$group", "$sort"]

    def test_everything_after_first_group_stays_on_router(self):
        pipeline = [
            {"$group": {"_id": "$item"}},
            {"$match": {"_id": "A"}},
        ]
        shard_part, merge_part = split_pipeline_for_shards(pipeline)
        assert shard_part == []
        assert len(merge_part) == 2


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.fixed_dictionaries(
            {"g": st.integers(0, 3), "v": st.integers(-100, 100)}
        ),
        min_size=1,
        max_size=50,
    )
)
def test_group_sum_matches_python_groupby(rows):
    """Property: $group/$sum agrees with a dictionary-based aggregation."""
    expected: dict[int, int] = {}
    for row in rows:
        expected[row["g"]] = expected.get(row["g"], 0) + row["v"]
    result = run_pipeline(rows, [{"$group": {"_id": "$g", "total": {"$sum": "$v"}}}])
    assert {doc["_id"]: doc["total"] for doc in result} == expected


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
def test_sort_stage_matches_sorted(values):
    rows = [{"v": value} for value in values]
    result = run_pipeline(rows, [{"$sort": {"v": 1}}])
    assert [doc["v"] for doc in result] == sorted(values)
