"""The unified ``explain()`` entry point on a stand-alone collection."""

from __future__ import annotations

import pytest

from repro.documentstore import (
    EXECUTION_KEYS,
    EXPLAIN_VERSION,
    PLANNER_KEYS,
    TOP_LEVEL_KEYS,
    DocumentStoreClient,
    FindSpec,
    OperationFailure,
)


def build_collection():
    collection = DocumentStoreClient()["shop"]["orders"]
    collection.insert_many(
        [{"_id": i, "store": i % 5, "amount": float(i)} for i in range(50)]
    )
    collection.create_index("store")
    return collection


def assert_schema(explain, *, surface, operation, verbosity):
    expected = set(TOP_LEVEL_KEYS)
    if verbosity == "executionStats":
        expected.add("executionStats")
    assert set(explain) == expected
    assert explain["explainVersion"] == EXPLAIN_VERSION
    assert explain["surface"] == surface
    assert explain["operation"] == operation
    assert explain["verbosity"] == verbosity
    assert set(explain["queryPlanner"]) == set(PLANNER_KEYS)
    if verbosity == "executionStats":
        assert EXECUTION_KEYS <= set(explain["executionStats"])


class TestFindExplain:
    def test_query_planner_schema(self):
        collection = build_collection()
        explain = collection.explain({"store": 2})
        assert_schema(
            explain, surface="standalone", operation="find", verbosity="queryPlanner"
        )
        assert explain["namespace"] == "shop.orders"
        assert explain["queryPlanner"]["winningPlan"]["stage"] == "IXSCAN"

    def test_execution_stats_schema(self):
        collection = build_collection()
        explain = collection.explain({"store": 2}, verbosity="executionStats")
        assert_schema(
            explain, surface="standalone", operation="find", verbosity="executionStats"
        )
        assert explain["executionStats"]["nReturned"] == 10

    def test_findspec_argument(self):
        collection = build_collection()
        spec = FindSpec(filter={"store": 1})
        explain = collection.explain(spec)
        assert explain["operation"] == "find"
        assert explain["queryPlanner"]["winningPlan"]["stage"] == "IXSCAN"

    def test_empty_query(self):
        collection = build_collection()
        explain = collection.explain()
        assert explain["queryPlanner"]["winningPlan"]["stage"] == "COLLSCAN"

    def test_unknown_verbosity_rejected(self):
        collection = build_collection()
        with pytest.raises(OperationFailure, match="verbosity"):
            collection.explain({}, verbosity="allPlansExecution")


class TestAggregateExplain:
    PIPELINE = [
        {"$match": {"store": 3}},
        {"$group": {"_id": "$store", "total": {"$sum": "$amount"}}},
    ]

    def test_query_planner_schema(self):
        collection = build_collection()
        explain = collection.explain(self.PIPELINE)
        assert_schema(
            explain,
            surface="standalone",
            operation="aggregate",
            verbosity="queryPlanner",
        )
        assert explain["queryPlanner"]["spec"]["pipeline"] == self.PIPELINE

    def test_execution_stats_schema(self):
        collection = build_collection()
        explain = collection.explain(self.PIPELINE, verbosity="executionStats")
        assert_schema(
            explain,
            surface="standalone",
            operation="aggregate",
            verbosity="executionStats",
        )
        assert explain["executionStats"]["nReturned"] == 1
        assert explain["executionStats"]["stages"]

    def test_out_stage_not_written_during_explain(self):
        collection = build_collection()
        database = collection.database
        collection.explain(
            [{"$match": {"store": 1}}, {"$out": "explained"}],
            verbosity="executionStats",
        )
        assert "explained" not in database.list_collection_names()


class TestLegacyAliases:
    """The historical shapes survive for existing callers."""

    def test_explain_find_shape(self):
        collection = build_collection()
        legacy = collection.explain_find(FindSpec(filter={"store": 2}))
        assert set(legacy) == {"queryPlanner"}
        assert set(legacy["queryPlanner"]) == {"winningPlan", "sortMode", "findSpec"}

    def test_explain_aggregate_shape(self):
        collection = build_collection()
        legacy = collection.explain_aggregate([{"$match": {"store": 2}}])
        assert set(legacy) == {"queryPlanner", "executionStats"}
        assert "winningPlan" in legacy["queryPlanner"]

    def test_cursor_explain_shape(self):
        collection = build_collection()
        explain = collection.find({"store": 2}).explain()
        assert set(explain) == {"queryPlanner"}
        assert set(explain["queryPlanner"]) == {"winningPlan", "sortMode", "findSpec"}
