"""Tests for the query-filter matcher."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.documentstore import InvalidOperator, matches, resolve_path, resolve_path_single
from repro.documentstore.matching import compare_values, compile_filter, path_exists, values_equal


DOCUMENT = {
    "ss_quantity": 42,
    "ss_sold_date_sk": {"d_year": 2001, "d_date": "2001-06-15", "d_dow": 0},
    "ss_item_sk": {"i_item_id": "AAAA0001", "i_current_price": 1.25},
    "tags": ["red", "blue"],
    "lines": [{"qty": 1, "sku": "a"}, {"qty": 5, "sku": "b"}],
    "nothing": None,
}


class TestPathResolution:
    def test_top_level_field(self):
        assert resolve_path(DOCUMENT, "ss_quantity") == [42]

    def test_dotted_path_into_embedded_document(self):
        assert resolve_path(DOCUMENT, "ss_sold_date_sk.d_year") == [2001]

    def test_dotted_path_fans_out_over_arrays(self):
        assert resolve_path(DOCUMENT, "lines.qty") == [1, 5]

    def test_numeric_path_component_indexes_arrays(self):
        assert resolve_path(DOCUMENT, "lines.1.sku") == ["b"]

    def test_missing_path_yields_nothing(self):
        assert resolve_path(DOCUMENT, "missing.path") == []

    def test_resolve_single_returns_default(self):
        assert resolve_path_single(DOCUMENT, "missing", default="fallback") == "fallback"

    def test_path_exists_distinguishes_null_from_missing(self):
        assert path_exists(DOCUMENT, "nothing")
        assert not path_exists(DOCUMENT, "absent")


class TestComparisonOperators:
    def test_implicit_equality(self):
        assert matches(DOCUMENT, {"ss_quantity": 42})
        assert not matches(DOCUMENT, {"ss_quantity": 43})

    def test_equality_on_dotted_path(self):
        assert matches(DOCUMENT, {"ss_sold_date_sk.d_year": 2001})

    def test_gt_gte_lt_lte(self):
        assert matches(DOCUMENT, {"ss_quantity": {"$gt": 41}})
        assert matches(DOCUMENT, {"ss_quantity": {"$gte": 42}})
        assert matches(DOCUMENT, {"ss_quantity": {"$lt": 43}})
        assert matches(DOCUMENT, {"ss_quantity": {"$lte": 42}})
        assert not matches(DOCUMENT, {"ss_quantity": {"$gt": 42}})

    def test_range_with_both_bounds(self):
        assert matches(DOCUMENT, {"ss_item_sk.i_current_price": {"$gte": 0.99, "$lte": 1.49}})
        assert not matches(DOCUMENT, {"ss_item_sk.i_current_price": {"$gte": 2.0, "$lte": 3.0}})

    def test_string_range_comparison_for_iso_dates(self):
        """Query 21 compares ISO date strings lexicographically."""
        assert matches(
            DOCUMENT,
            {"ss_sold_date_sk.d_date": {"$gte": "2001-01-01", "$lte": "2001-12-31"}},
        )

    def test_ne(self):
        assert matches(DOCUMENT, {"ss_quantity": {"$ne": 41}})
        assert not matches(DOCUMENT, {"ss_quantity": {"$ne": 42}})

    def test_comparison_across_types_never_matches(self):
        assert not matches(DOCUMENT, {"ss_quantity": {"$gt": "41"}})


class TestSetOperators:
    def test_in(self):
        assert matches(DOCUMENT, {"ss_sold_date_sk.d_dow": {"$in": [6, 0]}})
        assert not matches(DOCUMENT, {"ss_sold_date_sk.d_dow": {"$in": [2, 3]}})

    def test_in_matches_array_elements(self):
        assert matches(DOCUMENT, {"tags": {"$in": ["blue", "green"]}})

    def test_nin(self):
        assert matches(DOCUMENT, {"ss_quantity": {"$nin": [1, 2, 3]}})
        assert not matches(DOCUMENT, {"ss_quantity": {"$nin": [42]}})

    def test_in_requires_list(self):
        with pytest.raises(InvalidOperator):
            matches(DOCUMENT, {"ss_quantity": {"$in": 42}})


class TestLogicalOperators:
    def test_and(self):
        assert matches(
            DOCUMENT,
            {"$and": [{"ss_quantity": {"$gt": 40}}, {"ss_sold_date_sk.d_year": 2001}]},
        )

    def test_or(self):
        assert matches(
            DOCUMENT,
            {"$or": [{"ss_quantity": 0}, {"ss_sold_date_sk.d_year": 2001}]},
        )
        assert not matches(DOCUMENT, {"$or": [{"ss_quantity": 0}, {"ss_quantity": 1}]})

    def test_nor(self):
        assert matches(DOCUMENT, {"$nor": [{"ss_quantity": 0}, {"ss_quantity": 1}]})

    def test_not(self):
        assert matches(DOCUMENT, {"ss_quantity": {"$not": {"$gt": 100}}})
        assert not matches(DOCUMENT, {"ss_quantity": {"$not": {"$gt": 10}}})

    def test_unknown_top_level_operator_rejected(self):
        with pytest.raises(InvalidOperator):
            matches(DOCUMENT, {"$unknown": []})

    def test_unknown_field_operator_rejected(self):
        with pytest.raises(InvalidOperator):
            matches(DOCUMENT, {"ss_quantity": {"$frobnicate": 1}})


class TestElementOperators:
    def test_exists_true(self):
        assert matches(DOCUMENT, {"ss_item_sk.i_item_id": {"$exists": True}})
        assert not matches(DOCUMENT, {"missing_field": {"$exists": True}})

    def test_exists_false(self):
        assert matches(DOCUMENT, {"missing_field": {"$exists": False}})
        assert not matches(DOCUMENT, {"ss_quantity": {"$exists": False}})

    def test_null_field_exists(self):
        assert matches(DOCUMENT, {"nothing": {"$exists": True}})

    def test_type(self):
        assert matches(DOCUMENT, {"ss_quantity": {"$type": "int"}})
        assert matches(DOCUMENT, {"tags": {"$type": "array"}})
        assert not matches(DOCUMENT, {"ss_quantity": {"$type": "string"}})

    def test_unknown_type_alias_rejected(self):
        with pytest.raises(InvalidOperator):
            matches(DOCUMENT, {"ss_quantity": {"$type": "quux"}})


class TestEvaluationAndArrayOperators:
    def test_regex(self):
        assert matches(DOCUMENT, {"ss_item_sk.i_item_id": {"$regex": "^AAAA"}})
        assert not matches(DOCUMENT, {"ss_item_sk.i_item_id": {"$regex": "^ZZZZ"}})

    def test_mod(self):
        assert matches(DOCUMENT, {"ss_quantity": {"$mod": [7, 0]}})
        assert not matches(DOCUMENT, {"ss_quantity": {"$mod": [5, 1]}})

    def test_size(self):
        assert matches(DOCUMENT, {"tags": {"$size": 2}})
        assert not matches(DOCUMENT, {"tags": {"$size": 3}})

    def test_all(self):
        assert matches(DOCUMENT, {"tags": {"$all": ["red", "blue"]}})
        assert not matches(DOCUMENT, {"tags": {"$all": ["red", "green"]}})

    def test_elem_match(self):
        assert matches(DOCUMENT, {"lines": {"$elemMatch": {"qty": {"$gt": 3}, "sku": "b"}}})
        assert not matches(DOCUMENT, {"lines": {"$elemMatch": {"qty": {"$gt": 3}, "sku": "a"}}})


class TestExprAndEquality:
    def test_expr_filter(self):
        assert matches(DOCUMENT, {"$expr": {"$gt": ["$ss_quantity", 40]}})

    def test_values_equal_numeric_promotion(self):
        assert values_equal(1, 1.0)
        assert not values_equal(True, 1)

    def test_empty_filter_matches_everything(self):
        assert matches(DOCUMENT, {})
        assert matches(DOCUMENT, None)

    def test_compile_filter_is_reusable(self):
        predicate = compile_filter({"ss_quantity": {"$gte": 40}})
        assert predicate(DOCUMENT)
        assert not predicate({"ss_quantity": 1})


class TestCompareValues:
    def test_total_order_across_types(self):
        assert compare_values(None, 5) < 0
        assert compare_values(5, "text") < 0
        assert compare_values("text", {"a": 1}) < 0

    def test_numeric_comparison(self):
        assert compare_values(2, 10) < 0
        assert compare_values(10.5, 10) > 0
        assert compare_values(3, 3.0) == 0

    def test_list_comparison_is_elementwise(self):
        assert compare_values([1, 2], [1, 3]) < 0
        assert compare_values([1, 2, 3], [1, 2]) > 0


@given(st.lists(st.integers(), min_size=1, max_size=20), st.integers())
def test_in_operator_agrees_with_python_membership(values, needle):
    document = {"value": needle}
    assert matches(document, {"value": {"$in": values}}) == (needle in values)


@given(st.integers(), st.integers())
def test_comparison_operators_agree_with_python(left, right):
    document = {"value": left}
    assert matches(document, {"value": {"$gt": right}}) == (left > right)
    assert matches(document, {"value": {"$lte": right}}) == (left <= right)
