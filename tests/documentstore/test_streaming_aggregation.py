"""Tests for the streaming pipeline executor: counters, fusion, pushdown.

The engine must keep results bit-identical to the unoptimized stage-by-stage
execution while (a) streaming instead of materializing intermediates,
(b) running ``$sort``+``$limit`` as a bounded top-k selection, and
(c) pushing ``$match`` / inclusion-``$project`` toward the source.
"""

from __future__ import annotations

import pytest

from repro.documentstore import Collection, optimize_pipeline, run_pipeline
from repro.documentstore.aggregation import StageStats


ROWS = [
    {"item": chr(65 + (i % 7)), "store": i % 5, "qty": (i * 13) % 31, "tags": ["a", "b"][: i % 3]}
    for i in range(200)
]


def stage_labels(counters):
    return [stats.stage for stats in counters]


class TestStageCounters:
    def test_match_counters(self):
        counters: list[StageStats] = []
        run_pipeline(ROWS, [{"$match": {"store": 1}}], counters=counters)
        assert stage_labels(counters) == ["$match"]
        assert counters[0].docs_examined == len(ROWS)
        assert counters[0].docs_returned == sum(1 for r in ROWS if r["store"] == 1)

    def test_streaming_limit_stops_the_scan_early(self):
        """With a streaming $limit, upstream stages never see the full input."""
        counters: list[StageStats] = []
        result = run_pipeline(ROWS, [{"$match": {}}, {"$limit": 5}], counters=counters)
        assert len(result) == 5
        match_stats, limit_stats = counters
        # The $match stage only examined what $limit pulled through it.
        assert match_stats.docs_examined == 5
        assert limit_stats.docs_returned == 5

    def test_group_is_a_barrier_with_full_examination(self):
        counters: list[StageStats] = []
        run_pipeline(
            ROWS,
            [{"$group": {"_id": "$store", "n": {"$sum": 1}}}, {"$limit": 2}],
            counters=counters,
        )
        group_stats = counters[0]
        assert group_stats.docs_examined == len(ROWS)
        assert group_stats.docs_returned <= 5


class TestTopKFusion:
    def test_sort_limit_is_fused_and_does_not_materialize_the_sorted_list(self):
        counters: list[StageStats] = []
        result = run_pipeline(
            ROWS,
            [{"$sort": {"qty": -1, "item": 1}}, {"$limit": 7}, {"$project": {"qty": 1}}],
            counters=counters,
        )
        assert stage_labels(counters) == ["$sort+$limit", "$project"]
        fused = counters[0]
        # The fused stage consumes everything but only k documents ever leave
        # it — there is no N-document sorted intermediate for $project to see.
        assert fused.docs_examined == len(ROWS)
        assert fused.docs_returned == 7
        assert counters[1].docs_examined == 7
        assert len(result) == 7

    def test_fused_results_identical_to_unoptimized(self):
        pipeline = [{"$sort": {"qty": -1, "item": 1}}, {"$limit": 10}]
        assert run_pipeline(ROWS, pipeline) == run_pipeline(ROWS, pipeline, optimize=False)

    def test_sort_skip_limit_fusion(self):
        pipeline = [{"$sort": {"qty": 1}}, {"$skip": 5}, {"$limit": 4}]
        counters: list[StageStats] = []
        result = run_pipeline(ROWS, pipeline, counters=counters)
        assert stage_labels(counters) == ["$sort+$limit"]
        assert result == run_pipeline(ROWS, pipeline, optimize=False)
        assert len(result) == 4

    def test_sort_alone_still_full_sorts(self):
        pipeline = [{"$sort": {"qty": 1, "store": -1}}]
        assert run_pipeline(ROWS, pipeline) == run_pipeline(ROWS, pipeline, optimize=False)


class TestPushdown:
    def test_adjacent_matches_merge(self):
        optimized = optimize_pipeline(
            [{"$match": {"store": 1}}, {"$match": {"qty": {"$gt": 3}}}]
        )
        assert len(optimized) == 1 and "$match" in optimized[0]

    def test_match_moves_before_sort(self):
        optimized = optimize_pipeline(
            [{"$sort": {"qty": 1}}, {"$match": {"store": 1}}]
        )
        assert "$match" in optimized[0] and "$sort" in optimized[1]

    def test_match_moves_before_unwind_on_disjoint_path(self):
        pipeline = [{"$unwind": "$tags"}, {"$match": {"store": 2}}]
        optimized = optimize_pipeline(pipeline)
        assert "$match" in optimized[0]
        assert run_pipeline(ROWS, pipeline) == run_pipeline(ROWS, pipeline, optimize=False)

    def test_match_on_unwound_path_stays_after_unwind(self):
        pipeline = [{"$unwind": "$tags"}, {"$match": {"tags": "a"}}]
        optimized = optimize_pipeline(pipeline)
        assert "$unwind" in optimized[0]
        assert run_pipeline(ROWS, pipeline) == run_pipeline(ROWS, pipeline, optimize=False)

    def test_match_with_expr_is_never_pushed(self):
        pipeline = [{"$unwind": "$tags"}, {"$match": {"$expr": {"$gt": ["$qty", 3]}}}]
        assert "$unwind" in optimize_pipeline(pipeline)[0]

    def test_inclusion_project_moves_before_unwind(self):
        pipeline = [{"$unwind": "$tags"}, {"$project": {"tags": 1, "store": 1}}]
        optimized = optimize_pipeline(pipeline)
        assert "$project" in optimized[0]
        assert run_pipeline(ROWS, pipeline) == run_pipeline(ROWS, pipeline, optimize=False)

    def test_project_dropping_unwind_path_stays_put(self):
        pipeline = [{"$unwind": "$tags"}, {"$project": {"store": 1}}]
        assert "$unwind" in optimize_pipeline(pipeline)[0]

    def test_match_moves_before_lookup_on_disjoint_field(self):
        pipeline = [
            {"$lookup": {"from": "other", "localField": "store",
                         "foreignField": "store", "as": "joined"}},
            {"$match": {"qty": {"$gte": 10}}},
        ]
        optimized = optimize_pipeline(pipeline)
        assert "$match" in optimized[0]

    def test_match_on_lookup_output_stays_after_lookup(self):
        pipeline = [
            {"$lookup": {"from": "other", "localField": "store",
                         "foreignField": "store", "as": "joined"}},
            {"$match": {"joined.qty": {"$gte": 10}}},
        ]
        assert "$lookup" in optimize_pipeline(pipeline)[0]

    @pytest.mark.parametrize(
        "pipeline",
        [
            [{"$sort": {"qty": -1}}, {"$match": {"store": {"$in": [1, 2]}}}, {"$limit": 6}],
            [{"$unwind": "$tags"}, {"$match": {"store": 0}}, {"$group": {"_id": "$tags", "n": {"$sum": 1}}}],
            [{"$match": {"qty": {"$gt": 5}}}, {"$match": {"store": {"$lt": 4}}},
             {"$sort": {"qty": 1}}, {"$skip": 2}, {"$limit": 3}],
            [{"$unwind": "$tags"}, {"$project": {"tags": 1, "qty": 1, "_id": 0}},
             {"$sort": {"qty": -1}}, {"$limit": 5}],
        ],
    )
    def test_optimized_execution_is_bit_identical(self, pipeline):
        assert run_pipeline(ROWS, pipeline) == run_pipeline(ROWS, pipeline, optimize=False)


class TestExplainAggregate:
    @pytest.fixture()
    def collection(self):
        collection = Collection(None, "sales")
        collection.insert_many(ROWS)
        collection.create_index("store")
        return collection

    def test_indexed_leading_match_reports_ixscan(self, collection):
        explain = collection.explain_aggregate(
            [{"$match": {"store": 3}}, {"$group": {"_id": "$item", "n": {"$sum": 1}}}]
        )
        plan = explain["queryPlanner"]["winningPlan"]
        assert plan["stage"] == "IXSCAN"
        assert plan["indexName"] == "store_1"
        stages = explain["executionStats"]["stages"]
        assert stages[0]["stage"] == "$match"
        # The matcher only examined the index candidates, not the collection.
        assert stages[0]["docsExamined"] == sum(1 for r in ROWS if r["store"] == 3)
        assert plan["pipelineStages"] == stages

    def test_unindexed_match_reports_collscan(self, collection):
        explain = collection.explain_aggregate([{"$match": {"qty": {"$gt": 29}}}])
        assert explain["queryPlanner"]["winningPlan"]["stage"] == "COLLSCAN"
        assert explain["executionStats"]["stages"][0]["docsExamined"] == len(ROWS)

    def test_explain_does_not_write_out_target(self, collection):
        database_less = collection  # no database: $out unavailable in aggregate
        explain = database_less.explain_aggregate(
            [{"$match": {"store": 1}}, {"$out": "target"}]
        )
        labels = [s["stage"] for s in explain["executionStats"]["stages"]]
        assert labels == ["$match", "$out"]

    def test_aggregate_results_unchanged_by_explain_support(self, collection):
        pipeline = [
            {"$match": {"store": {"$in": [0, 1]}}},
            {"$group": {"_id": "$item", "total": {"$sum": "$qty"}}},
            {"$sort": {"_id": 1}},
        ]
        expected = run_pipeline(
            [d for d in ROWS if d["store"] in (0, 1)], pipeline[1:], optimize=False
        )
        got = collection.aggregate(pipeline)
        assert [r["total"] for r in sorted(got, key=lambda r: r["_id"])] == [
            r["total"] for r in sorted(expected, key=lambda r: r["_id"])
        ]
