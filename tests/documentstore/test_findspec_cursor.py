"""The FindSpec/Cursor protocol on the stand-alone collection engine."""

import pytest

from repro.documentstore import FindSpec, projection_preserves_fields
from repro.documentstore.collection import Collection
from repro.documentstore.cursor import project_document
from repro.documentstore.errors import OperationFailure


@pytest.fixture
def events() -> Collection:
    collection = Collection(None, "events")
    collection.insert_many(
        {"_id": i, "day": i % 7, "amount": float((i * 37) % 100), "store": i % 5}
        for i in range(100)
    )
    return collection


class TestLaziness:
    def test_find_does_not_execute_until_iterated(self, events):
        before = dict(events.operation_counters)
        cursor = events.find({"day": 3}).sort("amount", -1).limit(5)
        assert events.operation_counters == before
        cursor.to_list()
        assert events.operation_counters["queries"] == before["queries"] + 1

    def test_chained_options_land_in_one_spec(self, events):
        cursor = (
            events.find({"day": 3}, {"amount": 1})
            .sort("amount", -1)
            .skip(2)
            .limit(5)
            .batch_size(50)
        )
        spec = cursor.spec
        assert spec.filter == {"day": 3}
        assert spec.projection == {"amount": 1}
        assert spec.sort == (("amount", -1),)
        assert spec.skip == 2 and spec.limit == 5 and spec.batch_size == 50

    def test_find_kwargs_equal_chaining(self, events):
        chained = events.find({"day": 3}).sort("amount", 1).skip(1).limit(4).to_list()
        kwargs = events.find({"day": 3}, sort="amount", skip=1, limit=4).to_list()
        assert chained == kwargs

    def test_modifying_after_iteration_started_raises(self, events):
        cursor = events.find({})
        cursor.next()
        with pytest.raises(OperationFailure):
            cursor.limit(3)

    def test_cursor_can_be_iterated_twice(self, events):
        cursor = events.find({"day": 2}).sort("amount", 1)
        first = list(cursor)
        second = list(cursor)
        assert first == second and first

    def test_alive_and_next_protocol(self, events):
        cursor = events.find({"day": 1}).limit(3)
        seen = []
        while cursor.alive:
            seen.append(cursor.next())
        assert len(seen) == 3
        with pytest.raises(StopIteration):
            cursor.next()


class TestSortExecution:
    def test_sort_served_by_index_order(self, events):
        events.create_index("amount")
        explain = events.find({}).sort("amount", 1).explain()
        plan = explain["queryPlanner"]["winningPlan"]
        assert plan["stage"] == "IXSCAN"
        assert plan["sortServedByIndex"] is True
        assert plan["direction"] == "forward"
        assert explain["queryPlanner"]["sortMode"] == "indexOrder"

    def test_descending_sort_uses_backward_scan(self, events):
        events.create_index("amount")
        explain = events.find({}).sort("amount", -1).explain()
        assert explain["queryPlanner"]["winningPlan"]["direction"] == "backward"

    def test_index_order_results_match_materialized_sort(self, events):
        expected = sorted(
            events.find({}).to_list(), key=lambda doc: (doc["amount"], doc["_id"])
        )
        events.create_index([("amount", 1), ("_id", 1)])
        served = events.find({}).sort([("amount", 1), ("_id", 1)]).to_list()
        assert served == expected

    def test_index_order_with_limit_stops_scanning_early(self, events):
        events.create_index("amount")
        before = events.operation_counters["documents_scanned"]
        events.find({}).sort("amount", 1).limit(5).to_list()
        assert events.operation_counters["documents_scanned"] - before == 5

    def test_unindexed_sort_with_limit_uses_top_k(self, events):
        explain = events.find({"day": 3}).sort("amount", -1).limit(5).explain()
        assert explain["queryPlanner"]["sortMode"] == "topK"
        top = events.find({"day": 3}).sort("amount", -1).limit(5).to_list()
        expected = sorted(
            events.find({"day": 3}).to_list(),
            key=lambda doc: -doc["amount"],
        )[:5]
        assert [doc["_id"] for doc in top] == [doc["_id"] for doc in expected]

    def test_unindexed_sort_without_limit_materializes(self, events):
        explain = events.find({}).sort("day", 1).explain()
        assert explain["queryPlanner"]["sortMode"] == "sortMaterialize"

    def test_multikey_index_does_not_serve_sort(self):
        collection = Collection(None, "tags")
        collection.insert_many({"_id": i, "tags": [i, i + 10]} for i in range(5))
        collection.create_index("tags")
        explain = collection.find({}).sort("tags", 1).explain()
        assert "sortServedByIndex" not in explain["queryPlanner"]["winningPlan"]

    def test_skip_applies_before_limit_on_index_order(self, events):
        events.create_index([("amount", 1), ("_id", 1)])
        all_sorted = events.find({}).sort([("amount", 1), ("_id", 1)]).to_list()
        page = events.find({}).sort([("amount", 1), ("_id", 1)]).skip(10).limit(5).to_list()
        assert page == all_sorted[10:15]


class TestHint:
    def test_hint_forces_index(self, events):
        events.create_index("day")
        events.create_index("store")
        explain = events.find({"day": 1, "store": 2}).hint("store_1").explain()
        assert explain["queryPlanner"]["winningPlan"]["indexName"] == "store_1"

    def test_unknown_hint_raises(self, events):
        with pytest.raises(OperationFailure):
            events.find({}).hint("nope_1").to_list()


class TestProjectionSentinel:
    def test_missing_dotted_path_is_not_materialized_as_none(self):
        document = {"_id": 1, "a": {"b": 2}}
        projected = project_document(document, {"a.c": 1, "_id": 0})
        assert projected == {}

    def test_legitimate_none_at_dotted_path_is_kept(self):
        document = {"_id": 1, "a": {"b": None}}
        projected = project_document(document, {"a.b": 1, "_id": 0})
        assert projected == {"a": {"b": None}}

    def test_top_level_none_value_is_kept(self):
        projected = project_document({"_id": 1, "x": None}, {"x": 1, "_id": 0})
        assert projected == {"x": None}

    def test_missing_top_level_field_is_skipped(self):
        projected = project_document({"_id": 1}, {"x": 1, "_id": 0})
        assert projected == {}


class TestProjectionPreservesFields:
    @pytest.mark.parametrize(
        ("projection", "fields", "expected"),
        [
            (None, ["a"], True),
            ({"a": 1}, ["a"], True),
            ({"a": 1}, ["b"], False),
            ({"a": 1}, ["a.b"], True),
            ({"a.b": 1}, ["a"], False),
            ({"b": 0}, ["a"], True),
            ({"a": 0}, ["a"], False),
            ({"a.b": 0}, ["a"], False),
            ({"_id": 0, "a": 1}, ["_id"], False),
            ({"a": 1}, ["_id"], True),
        ],
    )
    def test_matrix(self, projection, fields, expected):
        assert projection_preserves_fields(projection, fields) is expected


class TestSpecApi:
    def test_find_with_options_equals_cursor_chain(self, events):
        chained = events.find({"day": 4}, {"amount": 1}).sort("amount", -1).skip(1).limit(3)
        one_shot = events.find_with_options(
            {"day": 4}, {"amount": 1}, sort=[("amount", -1)], skip=1, limit=3
        )
        assert chained.to_list() == one_shot

    def test_shard_spec_folds_skip_into_limit(self):
        spec = FindSpec.create(sort=[("a", 1)], skip=10, limit=5)
        shard_spec = spec.shard_spec()
        assert shard_spec.skip == 0 and shard_spec.limit == 15

    def test_shard_spec_drops_projection_that_hides_sort_key(self):
        spec = FindSpec.create(projection={"b": 1}, sort=[("a", 1)], limit=5)
        assert spec.shard_spec().projection is None

    def test_shard_spec_keeps_projection_covering_sort_key(self):
        spec = FindSpec.create(projection={"a": 1, "b": 1}, sort=[("a", 1)], limit=5)
        assert spec.shard_spec().projection == {"a": 1, "b": 1}

    def test_explain_shape(self, events):
        explain = events.find({"day": 1}).sort("amount", 1).limit(2).explain()
        planner = explain["queryPlanner"]
        assert set(planner) == {"winningPlan", "sortMode", "findSpec"}
        assert planner["findSpec"]["limit"] == 2
        assert planner["findSpec"]["sort"] == [["amount", 1]]

    def test_find_one_with_sort(self, events):
        smallest = events.find_one({}, sort=[("amount", 1), ("_id", 1)])
        expected = events.find({}).sort([("amount", 1), ("_id", 1)]).limit(1).to_list()[0]
        assert smallest == expected
