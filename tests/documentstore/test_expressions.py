"""Tests for the aggregation expression language."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.documentstore import InvalidOperator, OperationFailure
from repro.documentstore.expressions import evaluate_expression, field_path_of, is_field_path


DOCUMENT = {
    "qty": 4,
    "price": 2.5,
    "inv_before": 30,
    "inv_after": 45,
    "sold": 2_450_900,
    "returned": 2_450_935,
    "item": {"id": "AAAA1", "price": 1.25},
    "tags": ["a", "b", "c"],
    "name": "Earl",
    "empty": None,
    "day": datetime.date(2002, 5, 29),
}


def ev(expression, document=DOCUMENT):
    return evaluate_expression(expression, document)


class TestFieldPathsAndLiterals:
    def test_field_path(self):
        assert ev("$qty") == 4

    def test_dotted_field_path(self):
        assert ev("$item.price") == 1.25

    def test_missing_field_is_none(self):
        assert ev("$missing") is None

    def test_plain_string_is_a_literal(self):
        assert ev("hello") == "hello"

    def test_literal_operator_protects_dollar_strings(self):
        assert ev({"$literal": "$qty"}) == "$qty"

    def test_root_variable(self):
        assert ev("$$ROOT")["qty"] == 4
        assert ev("$$ROOT.item.id") == "AAAA1"

    def test_unknown_variable_rejected(self):
        with pytest.raises(InvalidOperator):
            ev("$$BOGUS")

    def test_document_expression_evaluates_values(self):
        assert ev({"q": "$qty", "p": "$price"}) == {"q": 4, "p": 2.5}

    def test_is_field_path_helpers(self):
        assert is_field_path("$qty") and not is_field_path("qty")
        assert not is_field_path("$$ROOT")
        assert field_path_of("$item.price") == "item.price"


class TestArithmetic:
    def test_add_subtract_multiply_divide(self):
        assert ev({"$add": ["$qty", 1, 5]}) == 10
        assert ev({"$subtract": ["$inv_after", "$inv_before"]}) == 15
        assert ev({"$multiply": ["$qty", "$price"]}) == 10.0
        assert ev({"$divide": ["$inv_after", "$inv_before"]}) == 1.5

    def test_date_key_subtraction_for_query50(self):
        """sr_returned_date_sk - ss_sold_date_sk gives the lag in days."""
        assert ev({"$subtract": ["$returned", "$sold"]}) == 35

    def test_divide_by_zero_raises(self):
        with pytest.raises(OperationFailure):
            ev({"$divide": [1, 0]})

    def test_null_operand_propagates(self):
        assert ev({"$add": ["$empty", 3]}) is None
        assert ev({"$subtract": ["$missing", 3]}) is None

    def test_mod_abs_floor_ceil_round(self):
        assert ev({"$mod": [7, 3]}) == 1
        assert ev({"$abs": -4}) == 4
        assert ev({"$floor": 2.7}) == 2
        assert ev({"$ceil": 2.1}) == 3
        assert ev({"$round": [2.456, 1]}) == 2.5

    def test_non_numeric_operand_rejected(self):
        with pytest.raises(OperationFailure):
            ev({"$add": ["$name", 1]})

    def test_subtract_requires_two_operands(self):
        with pytest.raises(OperationFailure):
            ev({"$subtract": [1, 2, 3]})


class TestComparisonAndBoolean:
    def test_eq_ne(self):
        assert ev({"$eq": ["$qty", 4]}) is True
        assert ev({"$ne": ["$qty", 4]}) is False

    def test_ordering_operators(self):
        assert ev({"$gt": ["$inv_after", "$inv_before"]}) is True
        assert ev({"$lte": ["$qty", 4]}) is True
        assert ev({"$lt": ["$price", 1]}) is False

    def test_cmp(self):
        assert ev({"$cmp": ["$qty", 10]}) < 0

    def test_and_or_not(self):
        assert ev({"$and": [{"$gt": ["$qty", 1]}, {"$lt": ["$qty", 10]}]}) is True
        assert ev({"$or": [{"$gt": ["$qty", 100]}, True]}) is True
        assert ev({"$not": [{"$gt": ["$qty", 100]}]}) is True

    def test_in_expression(self):
        assert ev({"$in": ["b", "$tags"]}) is True
        assert ev({"$in": ["z", "$tags"]}) is False

    def test_in_requires_array(self):
        with pytest.raises(OperationFailure):
            ev({"$in": ["b", "$qty"]})


class TestConditionals:
    def test_cond_array_form(self):
        """The Query 21 / 50 sum(case when ...) building block."""
        expression = {"$cond": [{"$lt": ["$price", 3]}, "$qty", 0]}
        assert ev(expression) == 4
        assert ev(expression, {**DOCUMENT, "price": 5.0}) == 0

    def test_cond_document_form(self):
        expression = {"$cond": {"if": {"$gt": ["$qty", 2]}, "then": "big", "else": "small"}}
        assert ev(expression) == "big"

    def test_cond_array_form_requires_three_elements(self):
        with pytest.raises(OperationFailure):
            ev({"$cond": [True, 1]})

    def test_if_null(self):
        assert ev({"$ifNull": ["$empty", "fallback"]}) == "fallback"
        assert ev({"$ifNull": ["$qty", "fallback"]}) == 4

    def test_switch(self):
        expression = {
            "$switch": {
                "branches": [
                    {"case": {"$lt": ["$qty", 2]}, "then": "few"},
                    {"case": {"$lt": ["$qty", 10]}, "then": "some"},
                ],
                "default": "many",
            }
        }
        assert ev(expression) == "some"

    def test_switch_without_match_or_default_raises(self):
        with pytest.raises(OperationFailure):
            ev({"$switch": {"branches": [{"case": False, "then": 1}]}})


class TestAggregatesAndArrays:
    def test_min_max_over_operands(self):
        assert ev({"$min": [3, "$qty", 9]}) == 3
        assert ev({"$max": [3, "$qty", 9]}) == 9

    def test_sum_and_avg_over_arrays(self):
        assert ev({"$sum": [1, 2, 3]}) == 6
        assert ev({"$avg": [2, 4]}) == 3

    def test_size_and_array_elem_at(self):
        assert ev({"$size": "$tags"}) == 3
        assert ev({"$arrayElemAt": ["$tags", 1]}) == "b"
        assert ev({"$arrayElemAt": ["$tags", -1]}) == "c"
        assert ev({"$arrayElemAt": ["$tags", 99]}) is None

    def test_concat_arrays(self):
        assert ev({"$concatArrays": ["$tags", ["d"]]}) == ["a", "b", "c", "d"]

    def test_filter_and_map(self):
        assert ev({"$filter": {"input": [1, 5, 9], "as": "n", "cond": {"$gt": ["$$n", 3]}}}) == [5, 9]
        assert ev({"$map": {"input": [1, 2], "as": "n", "in": {"$multiply": ["$$n", 10]}}}) == [10, 20]


class TestStringsAndDates:
    def test_concat_and_case(self):
        assert ev({"$concat": ["$name", "!"]}) == "Earl!"
        assert ev({"$toLower": "$name"}) == "earl"
        assert ev({"$toUpper": "$name"}) == "EARL"

    def test_concat_with_null_is_null(self):
        assert ev({"$concat": ["$empty", "x"]}) is None

    def test_substr_and_length(self):
        assert ev({"$substrCP": ["$name", 0, 2]}) == "Ea"
        assert ev({"$strLenCP": "$name"}) == 4

    def test_date_parts(self):
        assert ev({"$year": "$day"}) == 2002
        assert ev({"$month": "$day"}) == 5
        assert ev({"$dayOfMonth": "$day"}) == 29

    def test_type_conversions(self):
        assert ev({"$toString": "$qty"}) == "4"
        assert ev({"$toInt": "3"}) == 3
        assert ev({"$toDouble": "2.5"}) == 2.5

    def test_unknown_operator_rejected(self):
        with pytest.raises(InvalidOperator):
            ev({"$frobnicate": 1})

    def test_multiple_operators_in_one_document_rejected(self):
        with pytest.raises(InvalidOperator):
            ev({"$add": [1, 2], "$subtract": [1, 2]})


@given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
def test_arithmetic_matches_python(a, b):
    document = {"a": a, "b": b}
    assert evaluate_expression({"$add": ["$a", "$b"]}, document) == a + b
    assert evaluate_expression({"$subtract": ["$a", "$b"]}, document) == a - b
    assert evaluate_expression({"$gt": ["$a", "$b"]}, document) == (a > b)


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=20))
def test_min_max_match_python(values):
    document = {"values": values}
    assert evaluate_expression({"$min": "$values"}, document) == min(values)
    assert evaluate_expression({"$max": "$values"}, document) == max(values)
