"""Tests for the batched write engine (bulk insert_many, bulk_load, rollback)."""

from __future__ import annotations

import pytest

from repro.documentstore import Collection, DuplicateKeyError
from repro.documentstore.indexes import Index, IndexSpec

#: Index configurations for the bulk-vs-sequential parity matrix.
INDEX_CONFIGS = {
    "single": [("store", {})],
    "multikey": [("tags", {})],
    "hashed": [({"k": "hashed"}, {})],
    "compound": [([("store", 1), ("q", -1)], {})],
    "unique": [("sk", {"unique": True})],
    "mixed": [
        ("store", {}),
        ("tags", {}),
        ([("store", 1), ("q", -1)], {}),
        ("sk", {"unique": True}),
        ({"k": "hashed"}, {}),
    ],
}


def sample_documents(count: int = 120) -> list[dict]:
    return [
        {
            "_id": i,
            "sk": i,
            "store": i % 7,
            "q": i % 5,
            "k": f"v{i % 11}",
            "tags": [i % 3, i % 4, {"n": i % 2}],
        }
        for i in range(count)
    ]


def build_collection(config: str) -> Collection:
    collection = Collection(None, "c")
    for keys, options in INDEX_CONFIGS[config]:
        collection.create_index(keys, **options)
    return collection


def index_state(collection: Collection) -> dict:
    """Observable per-index state: entries in order plus order-safety."""
    return {
        name: {
            "entries": list(index.scan()),
            "order_safe": index.order_safe,
            "unsafe_count": index._order_unsafe_entries,
        }
        for name, index in collection._indexes.items()
    }


class TestBulkSequentialParity:
    @pytest.mark.parametrize("config", sorted(INDEX_CONFIGS))
    def test_same_documents_and_index_entries(self, config):
        documents = sample_documents()
        bulk = build_collection(config)
        bulk.insert_many(documents)
        sequential = build_collection(config)
        for document in documents:
            sequential.insert_one(document)

        assert bulk.find({}).to_list() == sequential.find({}).to_list()
        assert index_state(bulk) == index_state(sequential)
        assert (
            bulk.operation_counters["inserts"]
            == sequential.operation_counters["inserts"]
            == len(documents)
        )

    @pytest.mark.parametrize("config", sorted(INDEX_CONFIGS))
    def test_parity_on_presorted_and_reversed_batches(self, config):
        # Pre-sorted batches exercise the append fast path; reversed ones the merge.
        for order in (1, -1):
            documents = sample_documents()[::order]
            bulk = build_collection(config)
            bulk.insert_many(documents)
            sequential = build_collection(config)
            for document in documents:
                sequential.insert_one(document)
            assert index_state(bulk) == index_state(sequential)

    def test_incremental_batches_match_one_batch(self):
        documents = sample_documents()
        one_shot = build_collection("mixed")
        one_shot.insert_many(documents)
        incremental = build_collection("mixed")
        for start in range(0, len(documents), 17):
            incremental.insert_many(documents[start:start + 17])
        assert index_state(one_shot) == index_state(incremental)

    def test_mid_batch_unique_violation_keeps_prefix(self):
        # Ordered mode: documents before the offending one stay inserted,
        # the offender and everything after it do not.
        batch = [{"u": 1}, {"u": 2}, {"u": 3}, {"u": 2}, {"u": 4}]
        bulk = Collection(None, "b")
        bulk.create_index("u", unique=True)
        with pytest.raises(DuplicateKeyError):
            bulk.insert_many(batch)
        sequential = Collection(None, "s")
        sequential.create_index("u", unique=True)
        with pytest.raises(DuplicateKeyError):
            for document in batch:
                sequential.insert_one(document)
        assert [doc["u"] for doc in bulk.find({}).to_list()] == [1, 2, 3]
        assert len(bulk._indexes["u_1"]) == len(sequential._indexes["u_1"]) == 3
        assert (
            bulk.operation_counters["inserts"]
            == sequential.operation_counters["inserts"]
            == 3
        )

    def test_duplicate_against_existing_documents(self):
        collection = Collection(None, "c")
        collection.create_index("sk", unique=True)
        collection.insert_many([{"sk": 1}, {"sk": 2}])
        with pytest.raises(DuplicateKeyError):
            collection.insert_many([{"sk": 3}, {"sk": 2}])
        assert sorted(doc["sk"] for doc in collection.find({})) == [1, 2, 3]

    def test_duplicate_id_within_batch_rolls_back_secondaries(self):
        collection = Collection(None, "c")
        collection.create_index("a")
        with pytest.raises(DuplicateKeyError):
            collection.insert_many([{"_id": 1, "a": 1}, {"_id": 1, "a": 2}])
        assert len(collection) == 1
        assert len(collection._indexes["a_1"]) == 1


class TestInsertRollback:
    def test_secondary_unique_violation_rolls_back_all_indexes(self):
        # Regression: a DuplicateKeyError raised by the k-th secondary index
        # used to leave the document's entries in indexes 1..k-1.
        collection = Collection(None, "c")
        collection.create_index("a")
        collection.create_index("b", unique=True)
        collection.insert_one({"a": 1, "b": 9})
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"a": 2, "b": 9})
        assert len(collection._indexes["a_1"]) == 1
        assert len(collection._indexes["b_1"]) == 1
        assert len(collection._id_index) == 1
        assert collection.count_documents({"a": 2}) == 0

    def test_bulk_violation_on_later_index_leaves_no_trace(self):
        collection = Collection(None, "c")
        collection.create_index("a")
        collection.create_index("u", unique=True)
        collection.insert_one({"_id": 0, "a": 0, "u": 100})
        with pytest.raises(DuplicateKeyError):
            collection.insert_many(
                [{"_id": 1, "a": 1, "u": 1}, {"_id": 2, "a": 2, "u": 100}]
            )
        # Ordered semantics: the first batch document survives, the second
        # (the offender) is fully rolled back from every index.
        assert sorted(doc["_id"] for doc in collection.find({})) == [0, 1]
        assert len(collection._indexes["a_1"]) == 2
        assert len(collection._indexes["u_1"]) == 2
        assert len(collection._id_index) == 2


class TestIndexBulkOperations:
    def test_bulk_insert_matches_sequential_inserts(self):
        documents = [(i, doc) for i, doc in enumerate(sample_documents(50))]
        bulk_index = Index(IndexSpec.from_key_specification("store"))
        bulk_index.bulk_insert(documents)
        seq_index = Index(IndexSpec.from_key_specification("store"))
        for doc_id, document in documents:
            seq_index.insert(document, doc_id)
        assert list(bulk_index.scan()) == list(seq_index.scan())

    def test_bulk_insert_rollback_restores_merge_and_append_paths(self):
        index = Index(IndexSpec.from_key_specification("v"))
        index.insert({"v": 5}, 1)
        before = list(index.scan())
        # Append path (all keys after the existing one), then roll back.
        undo = index.bulk_insert([(2, {"v": 7}), (3, {"v": 9})])
        assert len(index) == 3
        undo.rollback()
        assert list(index.scan()) == before
        # Merge path (keys interleave), then roll back.
        undo = index.bulk_insert([(4, {"v": 1}), (5, {"v": 6})])
        assert len(index) == 3
        undo.rollback()
        assert list(index.scan()) == before

    def test_bulk_insert_unique_violation_leaves_index_untouched(self):
        index = Index(IndexSpec.from_key_specification("v", unique=True))
        index.insert({"v": 5}, 1)
        with pytest.raises(DuplicateKeyError):
            index.bulk_insert([(2, {"v": 4}), (3, {"v": 5})])
        assert list(index.scan()) == [((5,), 1)]

    def test_rollback_restores_order_unsafe_count(self):
        index = Index(IndexSpec.from_key_specification("tags"))
        undo = index.bulk_insert([(1, {"tags": [1, 2]})])
        assert not index.order_safe
        undo.rollback()
        assert index.order_safe

    def test_rebuild_matches_incremental_build(self):
        documents = {i: doc for i, doc in enumerate(sample_documents(40))}
        rebuilt = Index(IndexSpec.from_key_specification([("store", 1), ("q", -1)]))
        rebuilt.rebuild(documents.items())
        incremental = Index(IndexSpec.from_key_specification([("store", 1), ("q", -1)]))
        for doc_id, document in documents.items():
            incremental.insert(document, doc_id)
        assert list(rebuilt.scan()) == list(incremental.scan())
        assert rebuilt._order_unsafe_entries == incremental._order_unsafe_entries

    def test_rebuild_detects_unique_violation(self):
        index = Index(IndexSpec.from_key_specification("v", unique=True))
        with pytest.raises(DuplicateKeyError):
            index.rebuild([(1, {"v": 5}), (2, {"v": 5})])


class TestBulkLoad:
    def test_deferred_rebuild_produces_complete_indexes(self):
        collection = Collection(None, "c")
        collection.create_index("store")
        with collection.bulk_load():
            collection.insert_many(sample_documents(80))
            # Maintenance is deferred: the secondary index is still empty...
            assert len(collection._indexes["store_1"]) == 0
            # ...but queries remain correct (the planner ignores stale indexes).
            assert collection.count_documents({"store": 3}) == 11
            assert (
                collection.explain({"store": 3})["queryPlanner"]["winningPlan"]["stage"]
                == "COLLSCAN"
            )
        assert len(collection._indexes["store_1"]) == 80
        assert collection.count_documents({"store": 3}) == 11
        assert (
            collection.explain({"store": 3})["queryPlanner"]["winningPlan"]["stage"]
            == "IXSCAN"
        )

    def test_bulk_load_matches_plain_insert(self):
        documents = sample_documents(60)
        plain = build_collection("mixed")
        plain.insert_many(documents)
        deferred = build_collection("mixed")
        with deferred.bulk_load():
            deferred.insert_many(documents)
        assert index_state(plain) == index_state(deferred)

    def test_create_index_inside_bulk_load_is_deferred(self):
        collection = Collection(None, "c")
        with collection.bulk_load():
            collection.insert_many(sample_documents(30))
            collection.create_index("q")
            assert len(collection._indexes["q_1"]) == 0
        assert len(collection._indexes["q_1"]) == 30

    def test_create_index_defer_and_explicit_rebuild(self):
        collection = Collection(None, "c")
        collection.insert_many(sample_documents(25))
        collection.create_index("store", defer=True)
        assert len(collection._indexes["store_1"]) == 0
        # The planner must not use the pending (empty) index.
        assert (
            collection.explain({"store": 1})["queryPlanner"]["winningPlan"]["stage"]
            == "COLLSCAN"
        )
        assert collection.rebuild_indexes() == ["store_1"]
        assert len(collection._indexes["store_1"]) == 25
        assert (
            collection.explain({"store": 1})["queryPlanner"]["winningPlan"]["stage"]
            == "IXSCAN"
        )

    def test_updates_and_deletes_during_bulk_load_are_reflected(self):
        collection = Collection(None, "c")
        collection.create_index("store")
        with collection.bulk_load():
            collection.insert_many(sample_documents(40))
            collection.update_many({"store": 1}, {"$set": {"store": 100}})
            collection.delete_many({"store": 2})
        matched = collection.find({"store": 100}).to_list()
        assert len(matched) == 6
        assert collection.count_documents({"store": 2}) == 0
        # Index entries agree with the surviving documents.
        assert len(collection._indexes["store_1"]) == len(collection)

    def test_no_op_bulk_load_skips_rebuild(self):
        collection = Collection(None, "c")
        collection.create_index("store")
        collection.insert_many(sample_documents(10))
        entries_before = list(collection._indexes["store_1"].scan())
        with collection.bulk_load():
            pass
        assert list(collection._indexes["store_1"].scan()) == entries_before

    def test_hint_on_deferred_index_falls_back_to_collscan(self):
        collection = Collection(None, "c")
        collection.create_index("store")
        collection.insert_many(sample_documents(20))
        with collection.bulk_load():
            # The hinted index exists but is hidden while deferred: the
            # query plans without it instead of raising.
            docs = collection.find({"store": 1}, hint="store_1").to_list()
            assert len(docs) == 3
        assert (
            collection.find({"store": 1}, hint="store_1").explain()["queryPlanner"][
                "winningPlan"
            ]["stage"]
            == "IXSCAN"
        )

    def test_body_exception_not_masked_by_deferred_unique_violation(self):
        collection = Collection(None, "c")
        collection.create_index("u", unique=True)

        class LoaderError(Exception):
            pass

        with pytest.raises(LoaderError):  # not DuplicateKeyError
            with collection.bulk_load():
                collection.insert_many([{"u": 1}, {"u": 1}])  # deferred violation
                raise LoaderError("load aborted")
        # The offending index stays pending; an explicit rebuild re-raises.
        with pytest.raises(DuplicateKeyError):
            collection.rebuild_indexes()

    def test_deferred_unique_violation_raises_on_clean_exit(self):
        collection = Collection(None, "c")
        collection.create_index("u", unique=True)
        with pytest.raises(DuplicateKeyError):
            with collection.bulk_load():
                collection.insert_many([{"u": 1}, {"u": 1}])

    def test_nested_bulk_load_rebuilds_once_at_outermost_exit(self):
        collection = Collection(None, "c")
        collection.create_index("store")
        with collection.bulk_load():
            with collection.bulk_load():
                collection.insert_many(sample_documents(20))
            # Inner exit does not rebuild.
            assert len(collection._indexes["store_1"]) == 0
        assert len(collection._indexes["store_1"]) == 20
